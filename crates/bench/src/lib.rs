//! Experiment runners that regenerate every table and figure of the DATE'05
//! evaluation (see DESIGN.md section 4 for the experiment index).
//!
//! The same runners back the `tables` binary (human-readable paper-vs-
//! measured output) and the Criterion benches (wall-clock cost of the flow
//! itself — relevant because the paper motivates the fast greedy
//! partitioner with dynamic-synthesis use).

use binpart_core::flow::{Flow, FlowOptions};
use binpart_core::{DecompileError, DecompileOptions, FlowError};
use binpart_minicc::OptLevel;
use binpart_platform::{geomean, Platform};
use binpart_workloads::{suite, Benchmark};

/// One benchmark's row of Table 1 (experiment E1).
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: &'static str,
    /// `None` when CDFG recovery failed (the paper's 2-of-20).
    pub result: Option<E1Numbers>,
}

/// Numbers for a successfully partitioned benchmark.
#[derive(Debug, Clone, Copy)]
pub struct E1Numbers {
    /// Application speedup.
    pub app_speedup: f64,
    /// Mean kernel speedup.
    pub kernel_speedup: f64,
    /// Energy savings fraction.
    pub energy_savings: f64,
    /// Area in gate equivalents.
    pub area_gates: u64,
    /// Fraction of cycles moved to hardware.
    pub coverage: f64,
}

/// E1: the 20-benchmark table at `-O1`, 200 MHz.
pub fn run_e1(clock_hz: f64, recover_jump_tables: bool) -> Vec<E1Row> {
    let mut rows = Vec::new();
    for b in suite() {
        rows.push(run_one(&b, OptLevel::O1, clock_hz, recover_jump_tables));
    }
    rows
}

/// Runs one benchmark through the whole flow.
pub fn run_one(
    b: &Benchmark,
    level: OptLevel,
    clock_hz: f64,
    recover_jump_tables: bool,
) -> E1Row {
    let binary = b.compile(level).expect("suite compiles");
    let mut options = FlowOptions::default();
    options.platform = Platform::mips_virtex2(clock_hz);
    options.decompile = DecompileOptions {
        recover_jump_tables,
        ..Default::default()
    };
    let flow = Flow::new(options);
    match flow.run(&binary) {
        Ok(report) => E1Row {
            name: b.name.to_string(),
            suite: b.suite.label(),
            result: Some(E1Numbers {
                app_speedup: report.hybrid.app_speedup,
                kernel_speedup: report.hybrid.mean_kernel_speedup(),
                energy_savings: report.hybrid.energy_savings,
                area_gates: report.hybrid.total_area_gates,
                coverage: report.partition.coverage(),
            }),
        },
        Err(FlowError::Decompile(DecompileError::IndirectJump { .. })) => E1Row {
            name: b.name.to_string(),
            suite: b.suite.label(),
            result: None,
        },
        Err(e) => panic!("{}: unexpected flow error: {e}", b.name),
    }
}

/// Summary statistics over E1 rows.
#[derive(Debug, Clone, Copy)]
pub struct E1Summary {
    /// Successfully recovered benchmarks.
    pub recovered: usize,
    /// Failures (indirect jumps).
    pub failed: usize,
    /// Mean application speedup.
    pub mean_speedup: f64,
    /// Mean kernel speedup.
    pub mean_kernel_speedup: f64,
    /// Mean energy savings.
    pub mean_savings: f64,
    /// Mean area (gate equivalents).
    pub mean_area: u64,
}

/// Averages an E1 table.
pub fn summarize_e1(rows: &[E1Row]) -> E1Summary {
    let ok: Vec<&E1Numbers> = rows.iter().filter_map(|r| r.result.as_ref()).collect();
    let n = ok.len().max(1) as f64;
    E1Summary {
        recovered: ok.len(),
        failed: rows.len() - ok.len(),
        mean_speedup: geomean(ok.iter().map(|r| r.app_speedup)),
        mean_kernel_speedup: geomean(ok.iter().map(|r| r.kernel_speedup)),
        mean_savings: ok.iter().map(|r| r.energy_savings).sum::<f64>() / n,
        mean_area: (ok.iter().map(|r| r.area_gates).sum::<u64>() as f64 / n) as u64,
    }
}

/// E2: the platform sweep row for one clock.
pub fn run_e2(clock_hz: f64) -> E1Summary {
    summarize_e1(&run_e1(clock_hz, false))
}

/// One row of E3 (optimization-level study).
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Benchmark name.
    pub name: String,
    /// Optimization level.
    pub level: OptLevel,
    /// Software time (ms at the platform clock).
    pub sw_time_ms: f64,
    /// Hybrid time (ms).
    pub hybrid_time_ms: f64,
    /// Speedup.
    pub speedup: f64,
    /// Energy savings.
    pub savings: f64,
}

/// E3: 4 benchmarks x 4 levels at 200 MHz (jump-table recovery on, so every
/// cell completes).
pub fn run_e3() -> Vec<E3Row> {
    let mut rows = Vec::new();
    for b in binpart_workloads::opt_level_subset() {
        for level in OptLevel::ALL {
            let binary = b.compile(level).expect("compiles");
            let mut options = FlowOptions::default();
            options.decompile.recover_jump_tables = true;
            let report = Flow::new(options).run(&binary).expect("flow");
            rows.push(E3Row {
                name: b.name.to_string(),
                level,
                sw_time_ms: report.hybrid.sw_time_s * 1e3,
                hybrid_time_ms: report.hybrid.hybrid_time_s * 1e3,
                speedup: report.hybrid.app_speedup,
                savings: report.hybrid.energy_savings,
            });
        }
    }
    rows
}

/// E4: aggregate decompilation statistics over the suite at `-O1` (plus the
/// targeted -O2/-O3 passes).
#[derive(Debug, Clone, Copy, Default)]
pub struct E4Totals {
    /// Benchmarks recovered / failed.
    pub recovered: usize,
    /// CDFG failures.
    pub failed: usize,
    /// Loops recovered.
    pub loops: usize,
    /// Conditionals recovered.
    pub ifs: usize,
    /// Unstructured regions (should be ~0).
    pub unstructured: usize,
    /// Stack slots promoted (from -O0 binaries).
    pub stack_slots: usize,
    /// Multiplications promoted (from -O2 binaries).
    pub muls_promoted: usize,
    /// Loops rerolled (from -O3 binaries).
    pub rerolled: usize,
    /// Values narrowed below 32 bits.
    pub narrowed: usize,
}

/// Runs E4.
pub fn run_e4() -> E4Totals {
    let mut t = E4Totals::default();
    for b in suite() {
        // structure + widths from the -O1 binary
        let binary = b.compile(OptLevel::O1).expect("compiles");
        match binpart_core::decompile(&binary, DecompileOptions::default()) {
            Ok(prog) => {
                t.recovered += 1;
                t.loops += prog.stats.structure.loops();
                t.ifs += prog.stats.structure.ifs + prog.stats.structure.if_elses;
                t.unstructured += prog.stats.structure.unstructured;
                t.narrowed += prog.stats.passes.values_narrowed;
            }
            Err(_) => t.failed += 1,
        }
        // stack ops from -O0
        let b0 = b.compile(OptLevel::O0).expect("compiles");
        if let Ok(prog) = binpart_core::decompile(&b0, DecompileOptions::default()) {
            t.stack_slots += prog.stats.passes.stack_slots_promoted;
        }
        // strength promotion from -O2, rerolling from -O3 (with recovery so
        // jump-table benchmarks still decompile)
        let opts = DecompileOptions {
            recover_jump_tables: true,
            ..Default::default()
        };
        if let Ok(prog) = binpart_core::decompile(&b.compile(OptLevel::O2).unwrap(), opts) {
            t.muls_promoted += prog.stats.passes.muls_promoted;
        }
        if let Ok(prog) = binpart_core::decompile(&b.compile(OptLevel::O3).unwrap(), opts) {
            t.rerolled += prog.stats.passes.loops_rerolled;
        }
    }
    t
}

/// A1: partitioner-quality comparison on abstract candidates harvested from
/// the real flow.
#[derive(Debug, Clone)]
pub struct A1Result {
    /// (algorithm, total gain, solve time in microseconds).
    pub rows: Vec<(&'static str, u64, u128)>,
}

/// Runs the A1 ablation over the whole suite's kernel candidates.
pub fn run_a1(area_budget: u64) -> A1Result {
    use binpart_partition as bp;
    // Harvest candidates from every recovered benchmark.
    let mut items = Vec::new();
    for b in suite() {
        let binary = b.compile(OptLevel::O1).expect("compiles");
        let mut options = FlowOptions::default();
        options.decompile.recover_jump_tables = true;
        if let Ok(report) = Flow::new(options).run(&binary) {
            for k in &report.partition.kernels {
                let hw_cpu_cycles = (k.synth.timing.hw_cycles as f64
                    * (200e6 / (k.synth.timing.clock_mhz * 1e6)))
                    as u64;
                items.push(bp::Item {
                    sw_cycles: k.sw_cycles,
                    hw_cycles: hw_cpu_cycles,
                    area: k.synth.area.gate_equivalents,
                });
            }
        }
    }
    let timed = |f: &dyn Fn() -> bp::Selection| {
        let t0 = std::time::Instant::now();
        let sel = f();
        (sel.gain, t0.elapsed().as_micros())
    };
    let g = timed(&|| bp::greedy_90_10(&items, area_budget));
    let k = timed(&|| bp::knapsack_optimal(&items, area_budget, 256));
    let c = timed(&|| bp::gclp(&items, area_budget));
    let s = timed(&|| bp::simulated_annealing(&items, area_budget, 12345, 50_000));
    A1Result {
        rows: vec![
            ("greedy-90-10 (paper)", g.0, g.1),
            ("knapsack optimal", k.0, k.1),
            ("GCLP (Kalavade-Lee)", c.0, c.1),
            ("simulated annealing", s.0, s.1),
        ],
    }
}

/// A2: decompiler-optimization ablation — speedup with passes on vs off.
pub fn run_a2() -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for b in suite().into_iter().take(6) {
        let binary = b.compile(OptLevel::O1).expect("compiles");
        let run = |optimize: bool| -> f64 {
            let mut options = FlowOptions::default();
            options.decompile = DecompileOptions {
                recover_jump_tables: true,
                optimize,
            };
            match Flow::new(options).run(&binary) {
                Ok(r) => r.hybrid.app_speedup,
                Err(_) => 1.0,
            }
        };
        rows.push((b.name.to_string(), run(true), run(false)));
    }
    rows
}

/// A3: alias-step (block RAM) ablation.
pub fn run_a3() -> Vec<(String, f64, f64)> {
    let mut rows = Vec::new();
    for b in suite().into_iter().take(6) {
        let binary = b.compile(OptLevel::O1).expect("compiles");
        let run = |alias: bool| -> f64 {
            let mut options = FlowOptions::default();
            options.decompile.recover_jump_tables = true;
            options.partition.alias_step = alias;
            match Flow::new(options).run(&binary) {
                Ok(r) => r.hybrid.app_speedup,
                Err(_) => 1.0,
            }
        };
        rows.push((b.name.to_string(), run(true), run(false)));
    }
    rows
}
