/root/repo/target/release/deps/binpart_workloads-a2f07378b5f2b716.d: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libbinpart_workloads-a2f07378b5f2b716.rlib: crates/workloads/src/lib.rs

/root/repo/target/release/deps/libbinpart_workloads-a2f07378b5f2b716.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
