/root/repo/target/debug/deps/binpart_workloads-d63087049dcafa37.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libbinpart_workloads-d63087049dcafa37.rlib: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/libbinpart_workloads-d63087049dcafa37.rmeta: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
