//! Design-space exploration over the staged partitioning flow.
//!
//! The paper's evaluation sweeps one axis at a time (processor clock in
//! E2, compiler level in E3). This crate generalizes that into a grid
//! **sweep engine**: build a [`Sweep`] over platform clock × FPGA area
//! budget × compiler [`OptLevel`] × simulator [`FusionConfig`] (plus any
//! user-defined [`axis`](Sweep::axis) over [`FlowOptions`]), evaluate
//! every point, and extract the [Pareto frontier](SweepResult::pareto) of
//! speedup vs area vs energy.
//!
//! # Why it is fast
//!
//! Each compiled binary gets one [`StagedFlow`], so all points of the grid
//! share the staged artifacts (software profile per [`SimConfig`], CDFG
//! per decompile option set, candidate loops + memoized per-kernel
//! synthesis per artifact — see `binpart_core::stage` for the exact
//! invalidation table). A clock × budget sweep therefore simulates,
//! decompiles, and synthesizes **once** and spends the rest of the grid in
//! the selection loop. Points are evaluated in parallel with
//! [`binpart_par::par_map`] (`BINPART_THREADS=1` forces sequential), and
//! results are deterministic and ordered regardless of thread count.
//!
//! [`Sweep::run_naive`] evaluates the same grid through the monolithic
//! [`Flow::run`] per point — the baseline the staged engine is measured
//! against (`sweep_speedup_vs_naive` in `BENCH_sim.json`); both paths
//! produce bit-identical points.
//!
//! # Example
//!
//! ```
//! use binpart_explore::Sweep;
//! use binpart_minicc::{compile, OptLevel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "int a[64];
//!     int main(void) { int i; int s = 0;
//!       for (i = 0; i < 64; i++) a[i] = i * 3;
//!       for (i = 0; i < 64; i++) s += a[i];
//!       return s; }";
//! let result = Sweep::new()
//!     .clocks([100e6, 200e6, 400e6])
//!     .area_budgets([15_000, 250_000])
//!     .opt_levels([OptLevel::O1])
//!     .run(|level| compile(src, level).map_err(|e| e.to_string()));
//! assert_eq!(result.points.len(), 6);
//! let frontier = result.pareto();
//! assert!(!frontier.is_empty());
//! # Ok(())
//! # }
//! ```

use binpart_core::flow::{Flow, FlowOptions};
use binpart_core::stage::StagedFlow;
use binpart_mips::sim::{FusionConfig, SimConfig};
use binpart_mips::Binary;
use binpart_minicc::OptLevel;
use binpart_par::par_map;
use binpart_platform::ProcessorSpec;
use binpart_telemetry::{Counter, NullTelemetry, SpanGuard, Telemetry};
use std::sync::Arc;

// Referenced by the crate docs.
#[allow(unused_imports)]
use binpart_core::flow::Flow as _FlowDoc;

/// How a user-defined axis writes one of its values into [`FlowOptions`].
pub type AxisApply = Arc<dyn Fn(&mut FlowOptions, f64) + Send + Sync>;

/// A user-defined sweep axis: named values applied to [`FlowOptions`].
#[derive(Clone)]
pub struct Axis {
    /// Axis name (reports, debugging).
    pub name: String,
    /// The values the axis takes.
    pub values: Vec<f64>,
    apply: AxisApply,
}

impl std::fmt::Debug for Axis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field("values", &self.values)
            .finish()
    }
}

/// Grid sweep builder. Every axis defaults to the single point of the
/// base [`FlowOptions`]; setters replace an axis with explicit values.
#[derive(Debug, Clone)]
pub struct Sweep {
    base: FlowOptions,
    clocks_hz: Vec<f64>,
    area_budgets: Vec<u64>,
    opt_levels: Vec<OptLevel>,
    fusions: Vec<FusionConfig>,
    axes: Vec<Axis>,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep::new()
    }
}

impl Sweep {
    /// A sweep with default base options and singleton axes.
    pub fn new() -> Sweep {
        Sweep::with_base(FlowOptions::default())
    }

    /// A sweep whose non-swept options come from `base`.
    pub fn with_base(base: FlowOptions) -> Sweep {
        Sweep {
            clocks_hz: vec![base.platform.cpu.clock_hz],
            area_budgets: vec![base.partition.area_budget_gates],
            opt_levels: vec![OptLevel::O1],
            fusions: vec![base.sim.fusion],
            axes: Vec::new(),
            base,
        }
    }

    /// Processor clock axis (Hz).
    #[must_use]
    pub fn clocks(mut self, hz: impl IntoIterator<Item = f64>) -> Sweep {
        self.clocks_hz = hz.into_iter().collect();
        assert!(!self.clocks_hz.is_empty(), "empty clock axis");
        self
    }

    /// FPGA area budget axis (gate equivalents).
    #[must_use]
    pub fn area_budgets(mut self, gates: impl IntoIterator<Item = u64>) -> Sweep {
        self.area_budgets = gates.into_iter().collect();
        assert!(!self.area_budgets.is_empty(), "empty budget axis");
        self
    }

    /// Compiler optimization level axis.
    #[must_use]
    pub fn opt_levels(mut self, levels: impl IntoIterator<Item = OptLevel>) -> Sweep {
        self.opt_levels = levels.into_iter().collect();
        assert!(!self.opt_levels.is_empty(), "empty level axis");
        self
    }

    /// Simulator superinstruction-fusion axis. Fusion is observationally
    /// exact, so this axis never changes results; the staged engine
    /// shares one artifact across all fusion points (profiling once),
    /// while [`Sweep::run_naive`] re-simulates per point — so only the
    /// naive path measures each configuration's profiling cost.
    #[must_use]
    pub fn fusions(mut self, fusions: impl IntoIterator<Item = FusionConfig>) -> Sweep {
        self.fusions = fusions.into_iter().collect();
        assert!(!self.fusions.is_empty(), "empty fusion axis");
        self
    }

    /// Adds a user-defined axis: `apply` writes each value into the
    /// [`FlowOptions`] of the points along it (e.g. coverage target,
    /// kernel cap, communication overhead).
    #[must_use]
    pub fn axis(
        mut self,
        name: impl Into<String>,
        values: impl IntoIterator<Item = f64>,
        apply: impl Fn(&mut FlowOptions, f64) + Send + Sync + 'static,
    ) -> Sweep {
        let name = name.into();
        let values: Vec<f64> = values.into_iter().collect();
        assert!(!values.is_empty(), "empty axis {name}");
        self.axes.push(Axis {
            name,
            values,
            apply: Arc::new(apply),
        });
        self
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.configs().len()
    }

    /// Returns `true` for a degenerate empty grid (never constructible via
    /// the setters).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full cross product of the axes, in deterministic row-major
    /// order: level (slowest) × clock × budget × fusion × custom axes.
    pub fn configs(&self) -> Vec<PointConfig> {
        let mut custom: Vec<Vec<f64>> = vec![Vec::new()];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(custom.len() * axis.values.len());
            for prefix in &custom {
                for &v in &axis.values {
                    let mut row = prefix.clone();
                    row.push(v);
                    next.push(row);
                }
            }
            custom = next;
        }
        let mut configs = Vec::new();
        for &level in &self.opt_levels {
            for &clock_hz in &self.clocks_hz {
                for &area_budget_gates in &self.area_budgets {
                    for &fusion in &self.fusions {
                        for axis_values in &custom {
                            configs.push(PointConfig {
                                level,
                                clock_hz,
                                area_budget_gates,
                                fusion,
                                axis_values: axis_values.clone(),
                            });
                        }
                    }
                }
            }
        }
        configs
    }

    /// The [`FlowOptions`] of one grid point.
    ///
    /// Non-swept options come from the base verbatim; in particular, a
    /// point whose clock equals the base platform's clock keeps the base
    /// processor spec (power model included). Other clock values use the
    /// paper's MIPS power model ([`ProcessorSpec::mips`]), which is what
    /// the clock axis sweeps.
    pub fn options_for(&self, config: &PointConfig) -> FlowOptions {
        let mut options = self.base.clone();
        if config.clock_hz != self.base.platform.cpu.clock_hz {
            options.platform.cpu = ProcessorSpec::mips(config.clock_hz);
        }
        options.partition.area_budget_gates = config.area_budget_gates;
        options.sim = SimConfig {
            fusion: config.fusion,
            ..self.base.sim
        };
        for (axis, &value) in self.axes.iter().zip(&config.axis_values) {
            (axis.apply)(&mut options, value);
        }
        options
    }

    /// Runs the sweep through the staged flow: one compile + one
    /// [`StagedFlow`] per [`OptLevel`], all points sharing its artifacts,
    /// evaluated in parallel. Point order matches [`Sweep::configs`].
    pub fn run(&self, compile: impl FnMut(OptLevel) -> Result<Binary, String>) -> SweepResult {
        self.run_impl(&NullTelemetry, compile, false)
    }

    /// Like [`Sweep::run`], reporting progress through `telemetry`: a
    /// `sweep` span over the whole grid, per-point
    /// `sweep_points_ok`/`sweep_points_failed` counters as points
    /// complete, a `sweep_done` event, and — because each level's
    /// [`StagedFlow`] is built over the same sink — all the per-stage
    /// spans and cache counters of the underlying flow.
    pub fn run_with_telemetry<T: Telemetry>(
        &self,
        telemetry: &T,
        compile: impl FnMut(OptLevel) -> Result<Binary, String>,
    ) -> SweepResult {
        self.run_impl(telemetry, compile, false)
    }

    /// Runs the same grid through the monolithic [`Flow::run`] per point —
    /// every point re-simulates, re-decompiles, and re-synthesizes from
    /// scratch. Same parallel fan-out, bit-identical points; exists as the
    /// baseline the staged engine is benchmarked against.
    pub fn run_naive(
        &self,
        compile: impl FnMut(OptLevel) -> Result<Binary, String>,
    ) -> SweepResult {
        self.run_impl(&NullTelemetry, compile, true)
    }

    fn run_impl<T: Telemetry>(
        &self,
        telemetry: &T,
        mut compile: impl FnMut(OptLevel) -> Result<Binary, String>,
        naive: bool,
    ) -> SweepResult {
        let configs = self.configs();
        let _span = SpanGuard::enter(telemetry, "sweep", || {
            format!("{} points, {} levels{}", configs.len(), self.opt_levels.len(), if naive { ", naive" } else { "" })
        });
        // One binary per level (compiled once, up front).
        let mut binaries: Vec<(OptLevel, Result<Binary, String>)> = Vec::new();
        for &level in &self.opt_levels {
            binaries.push((level, compile(level)));
        }
        let staged: Vec<Option<StagedFlow<'_, &T>>> = binaries
            .iter()
            .map(|(_, b)| b.as_ref().ok().map(|bin| StagedFlow::with_telemetry(bin, telemetry)))
            .collect();
        let level_index =
            |level: OptLevel| binaries.iter().position(|(l, _)| *l == level).expect("own level");
        let points = par_map(&configs, |config| {
            let li = level_index(config.level);
            let options = self.options_for(config);
            let outcome = match (&binaries[li].1, &staged[li]) {
                (Err(e), _) => Err(format!("compile failed: {e}")),
                (Ok(binary), Some(flow)) => {
                    let evaluated = if naive {
                        Flow::new(options).run(binary).map(|r| PointReport {
                            sw_cycles: r.sw_cycles,
                            sw_exit_value: r.sw_exit_value,
                            speedup: r.hybrid.app_speedup,
                            energy_savings: r.hybrid.energy_savings,
                            area_gates: r.hybrid.total_area_gates,
                            kernels: r.partition.kernels.len(),
                            coverage: r.partition.coverage(),
                            sw_time_s: r.hybrid.sw_time_s,
                            hybrid_time_s: r.hybrid.hybrid_time_s,
                        })
                    } else {
                        flow.evaluate(&options).map(|r| PointReport {
                            sw_cycles: r.sw_cycles,
                            sw_exit_value: r.sw_exit_value,
                            speedup: r.hybrid.app_speedup,
                            energy_savings: r.hybrid.energy_savings,
                            area_gates: r.hybrid.total_area_gates,
                            kernels: r.partition.kernels.len(),
                            coverage: r.partition.coverage(),
                            sw_time_s: r.hybrid.sw_time_s,
                            hybrid_time_s: r.hybrid.hybrid_time_s,
                        })
                    };
                    evaluated.map_err(|e| e.to_string())
                }
                (Ok(_), None) => unreachable!("staged flow exists for compiled binaries"),
            };
            telemetry.counter_add(
                if outcome.is_ok() { Counter::SweepPointsOk } else { Counter::SweepPointsFailed },
                1,
            );
            SweepPoint {
                config: config.clone(),
                outcome,
            }
        });
        if T::ENABLED {
            let ok = points.iter().filter(|p| p.outcome.is_ok()).count();
            telemetry.event("sweep_done", &format!("{}/{} points ok", ok, points.len()));
        }
        SweepResult { points }
    }
}

/// Coordinates of one grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointConfig {
    /// Compiler optimization level.
    pub level: OptLevel,
    /// Processor clock (Hz).
    pub clock_hz: f64,
    /// FPGA area budget (gate equivalents).
    pub area_budget_gates: u64,
    /// Simulator fusion configuration.
    pub fusion: FusionConfig,
    /// Values of the user-defined axes, in axis order.
    pub axis_values: Vec<f64>,
}

/// The flow's numbers at one point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointReport {
    /// Profiled all-software cycles.
    pub sw_cycles: u64,
    /// `$v0` at software exit.
    pub sw_exit_value: u32,
    /// Application speedup.
    pub speedup: f64,
    /// Energy savings fraction.
    pub energy_savings: f64,
    /// FPGA area used (gate equivalents).
    pub area_gates: u64,
    /// Kernels selected.
    pub kernels: usize,
    /// Fraction of software cycles moved to hardware.
    pub coverage: f64,
    /// All-software time (s).
    pub sw_time_s: f64,
    /// Hybrid time (s).
    pub hybrid_time_s: f64,
}

/// One evaluated grid point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Where on the grid.
    pub config: PointConfig,
    /// The result, or why the point failed (compile error, CDFG recovery
    /// failure).
    pub outcome: Result<PointReport, String>,
}

/// All points of a sweep, in [`Sweep::configs`] order.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Evaluated points.
    pub points: Vec<SweepPoint>,
}

impl SweepResult {
    /// Successful points.
    pub fn ok_points(&self) -> impl Iterator<Item = (&PointConfig, &PointReport)> {
        self.points
            .iter()
            .filter_map(|p| p.outcome.as_ref().ok().map(|r| (&p.config, r)))
    }

    /// The Pareto frontier over (maximize speedup, maximize energy
    /// savings, minimize area), in sweep order. A point is on the frontier
    /// when no other successful point is at least as good on every
    /// objective and strictly better on one.
    pub fn pareto(&self) -> Vec<&SweepPoint> {
        let ok: Vec<(usize, &PointReport)> = self
            .points
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.outcome.as_ref().ok().map(|r| (i, r)))
            .collect();
        let dominates = |a: &PointReport, b: &PointReport| -> bool {
            let ge = a.speedup >= b.speedup
                && a.energy_savings >= b.energy_savings
                && a.area_gates <= b.area_gates;
            let gt = a.speedup > b.speedup
                || a.energy_savings > b.energy_savings
                || a.area_gates < b.area_gates;
            ge && gt
        };
        ok.iter()
            .filter(|(_, r)| !ok.iter().any(|(_, other)| dominates(other, r)))
            .map(|&(i, _)| &self.points[i])
            .collect()
    }

    /// The successful point with the highest speedup, if any.
    pub fn best_speedup(&self) -> Option<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.outcome.is_ok())
            .max_by(|a, b| {
                let sa = a.outcome.as_ref().unwrap().speedup;
                let sb = b.outcome.as_ref().unwrap().speedup;
                sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}
