//! The paper's three-step "90-10" partitioning heuristic.
//!
//! 1. Profile-ranked loops are moved to hardware until ~90 % of execution is
//!    covered (while the FPGA area budget holds).
//! 2. Alias information finds the memory the selected loops touch; when all
//!    of a kernel's accesses resolve to global arrays, those arrays move to
//!    on-FPGA block RAM (raising memory parallelism), and other candidate
//!    regions touching the *same* arrays join the hardware partition.
//! 3. Remaining candidates are added greedily by profile weight × hardware
//!    suitability until the area constraint would be violated.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::alias::{self, RegionSummary};
use crate::diag::{Diagnostic, FlowStage};
use crate::decompile::{
    blocks_contain_call, region_pc_range, sw_cycles_of_blocks, DecompiledProgram,
};
use binpart_cdfg::ir::BlockId;
use binpart_cdfg::ir::Function;
use binpart_cdfg::loops::LoopForest;
use binpart_mips::sim::Profile;
use binpart_mips::{Binary, CycleModel};
use binpart_synth::{synthesize, ResourceBudget, SynthesisInput, SynthesisResult, TechLibrary};

/// Partitioner tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionOptions {
    /// FPGA area budget in gate equivalents.
    pub area_budget_gates: u64,
    /// Step-1 coverage target (fraction of total cycles; the "90" of 90-10).
    pub coverage: f64,
    /// Enable step 2 (memory co-location / block RAM migration).
    pub alias_step: bool,
    /// Maximum kernels to select.
    pub max_kernels: usize,
    /// Minimum per-kernel share of total cycles to consider at all.
    pub min_share: f64,
    /// Processor clock, used to reject kernels whose hardware time would
    /// not beat their software time (a region is only "suitable" for
    /// hardware if it actually accelerates).
    pub cpu_clock_hz: f64,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            area_budget_gates: 150_000,
            coverage: 0.9,
            alias_step: true,
            max_kernels: 8,
            min_share: 0.005,
            cpu_clock_hz: 200e6,
        }
    }
}

/// One region selected for hardware.
#[derive(Debug, Clone)]
pub struct SelectedKernel {
    /// Index into [`DecompiledProgram::functions`].
    pub func_index: usize,
    /// Region blocks (a loop nest).
    pub blocks: Vec<BlockId>,
    /// The loop-nest header — the region's single entry block (the
    /// co-simulation trap point).
    pub header: BlockId,
    /// Kernel display name.
    pub name: String,
    /// Profiled software cycles the kernel replaces.
    pub sw_cycles: u64,
    /// CPU→FPGA invocations (loop entries).
    pub invocations: u64,
    /// Whether the kernel's arrays moved to block RAM (step 2).
    pub mem_in_bram: bool,
    /// Bytes of array data placed in block RAM.
    pub bram_bytes: u64,
    /// Memory summary from alias analysis.
    pub regions: RegionSummary,
    /// Synthesis result (timing, area, VHDL).
    pub synth: SynthesisResult,
    /// Which partitioning step selected it (1, 2, or 3).
    pub step: u8,
}

/// The partitioning result.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Selected kernels.
    pub kernels: Vec<SelectedKernel>,
    /// Total area used (gate equivalents).
    pub total_area_gates: u64,
    /// Total profiled cycles of the program.
    pub total_sw_cycles: u64,
    /// Human-readable decision log.
    pub log: Vec<String>,
    /// Candidates rejected back to software by a *synthesis failure*
    /// (stage [`FlowStage::Synth`]). Area and suitability rejections are
    /// normal heuristic outcomes and stay in [`Partition::log`] only.
    pub diagnostics: Vec<Diagnostic>,
}

impl Partition {
    /// Fraction of software cycles moved to hardware.
    pub fn coverage(&self) -> f64 {
        if self.total_sw_cycles == 0 {
            return 0.0;
        }
        self.kernels.iter().map(|k| k.sw_cycles).sum::<u64>() as f64
            / self.total_sw_cycles as f64
    }
}

/// One hardware-candidate region (an outermost call-free loop nest), with
/// its profile weight and memory summary. Produced by
/// [`harvest_candidates`]; invariant across platform clock, area budget,
/// and partitioner tuning.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Index into [`DecompiledProgram::functions`].
    pub func_index: usize,
    /// Region blocks (a loop nest).
    pub blocks: Vec<BlockId>,
    /// The loop-nest header — the region's single entry block.
    pub header: BlockId,
    /// Kernel display name.
    pub name: String,
    /// Profiled software cycles the region covers.
    pub sw_cycles: u64,
    /// Loop entries (CPU→FPGA invocations if selected).
    pub invocations: u64,
    /// Memory summary from alias analysis.
    pub regions: RegionSummary,
    /// Hardware suitability weight (divisions, unresolved pointers).
    pub suitability: f64,
}

/// All hardware candidates of one profiled program — the partitioner's
/// platform-independent input artifact. Harvested once, reused for every
/// (platform, budget) point of a sweep.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// Candidates in discovery order (function order × loop order),
    /// *unfiltered* — [`PartitionOptions::min_share`] is applied at
    /// selection time so one harvest serves any option set.
    pub candidates: Vec<Candidate>,
    /// Start of the data section (for block-RAM extent computation).
    pub data_base: u32,
    /// End of the data section.
    pub data_end: u32,
}

/// Harvests every outermost call-free loop nest of `prog` as a hardware
/// candidate, with profile weights from `profile` and `cycles`.
///
/// This is the profile/alias-analysis half of [`partition_90_10`], split
/// out so sweeps can run it once per program: nothing here depends on the
/// platform clock, the FPGA area budget, or the partitioner options.
pub fn harvest_candidates(
    prog: &DecompiledProgram,
    binary: &Binary,
    profile: &Profile,
    cycles: &CycleModel,
) -> CandidateSet {
    let data_base = binary.data_base;
    let data_end = binary.data_end();
    let mut candidates: Vec<Candidate> = Vec::new();
    for (fi, f) in prog.functions.iter().enumerate() {
        let forest = LoopForest::compute(f);
        for l in forest.loops() {
            if l.parent.is_some() {
                continue; // only outermost nests; inner loops come along
            }
            if blocks_contain_call(f, &l.blocks) {
                continue;
            }
            let sw = sw_cycles_of_blocks(f, &l.blocks, binary, profile, cycles);
            // Loop entries — the paper's loop-bound estimate. Preferred:
            // header executions minus *measured* dynamic back-edge
            // transfers from the branch-bias (edge) profile; fallback when
            // the profile carries no taken data: latch block counts (which
            // overcount back edges of fall-out latches by one per entry).
            let header_count = f.block(l.header).profile_count;
            let fn_end = crate::decompile::function_end_after(
                binary,
                &prog.entries,
                f.block(l.header).start_pc.unwrap_or(binary.text_base),
            );
            let back_edges =
                measured_back_edges(f, &l.blocks, l.header, binary, profile, fn_end)
                    .unwrap_or_else(|| {
                        l.latches.iter().map(|&b| f.block(b).profile_count).sum()
                    });
            let invocations = header_count.saturating_sub(back_edges).max(1);
            let regions = alias::summarize(f, &l.blocks, data_base, data_end);
            // Hardware suitability: divisions and unresolved pointers make
            // regions less attractive.
            let mut suitability = 1.0;
            let has_div = l.blocks.iter().any(|&b| {
                f.block(b).ops.iter().any(|i| {
                    matches!(
                        i.op,
                        binpart_cdfg::ir::Op::Bin {
                            op: binpart_cdfg::ir::BinOp::DivS
                                | binpart_cdfg::ir::BinOp::DivU
                                | binpart_cdfg::ir::BinOp::RemS
                                | binpart_cdfg::ir::BinOp::RemU,
                            ..
                        }
                    )
                })
            });
            if has_div {
                suitability *= 0.6;
            }
            if regions.has_unknown {
                suitability *= 0.5;
            }
            candidates.push(Candidate {
                func_index: fi,
                blocks: l.blocks.clone(),
                header: l.header,
                name: format!("{}_loop_{}", f.name, l.header.index()),
                sw_cycles: sw,
                invocations,
                regions,
                suitability,
            });
        }
    }
    CandidateSet {
        candidates,
        data_base,
        data_end,
    }
}

/// Counts the loop's dynamic back-edge transfers from the branch-bias
/// profile: taken counts of conditional branches targeting the header plus
/// execution counts of unconditional jumps to it, scanned over the loop's
/// full *machine* extent ([`crate::decompile::region_machine_extent`] —
/// provenance alone misses trailing `j header; nop` latches and the
/// unrolled sections of rerolled loops). `None` when the profile carries
/// no taken data (e.g. a [`binpart_mips::sim::BlockCountProfiler`] run) or
/// no back-edge instruction is found — callers fall back to latch block
/// counts.
fn measured_back_edges(
    f: &Function,
    blocks: &[BlockId],
    header: BlockId,
    binary: &Binary,
    profile: &Profile,
    fn_end: u32,
) -> Option<u64> {
    if !profile.has_taken_data() {
        return None;
    }
    let (lo, hi) = region_pc_range(f, blocks)?;
    let hi = crate::decompile::region_machine_extent(binary, lo, hi, fn_end);
    let header_pc = f.block(header).start_pc?;
    let mut total = 0u64;
    let mut found = false;
    let mut pc = lo;
    while pc <= hi {
        let idx = pc.wrapping_sub(binary.text_base) / 4;
        if let Some(&word) = binary.text.get(idx as usize) {
            if let Ok(instr) = binpart_mips::decode(word) {
                if instr.branch_target(pc) == Some(header_pc) {
                    total += profile.taken_at(pc);
                    found = true;
                } else if matches!(instr, binpart_mips::Instr::J { .. })
                    && instr.jump_target(pc) == Some(header_pc)
                {
                    total += profile.count_at(pc);
                    found = true;
                }
            }
        }
        pc += 4;
    }
    found.then_some(total)
}

/// Runs the three-step partitioner.
///
/// `total_sw_cycles` is the whole-program profiled cycle count; candidates
/// are outermost loop nests without calls. Equivalent to
/// [`harvest_candidates`] followed by [`partition_with_candidates`] with no
/// cache.
#[allow(clippy::too_many_arguments)]
pub fn partition_90_10(
    prog: &DecompiledProgram,
    binary: &Binary,
    profile: &Profile,
    cycles: &CycleModel,
    total_sw_cycles: u64,
    options: &PartitionOptions,
    budget: &ResourceBudget,
    library: &TechLibrary,
) -> Partition {
    let set = harvest_candidates(prog, binary, profile, cycles);
    partition_with_candidates(prog, &set, total_sw_cycles, options, budget, library, None)
}

/// The selection half of [`partition_90_10`]: applies the `min_share`
/// filter, ranks, and runs steps 1–3 over a pre-harvested candidate set,
/// optionally memoizing synthesis through `cache`.
///
/// With a `cache`, results are still bit-identical to the uncached path —
/// synthesis is deterministic and the cache key covers every input (see
/// [`binpart_synth::estimate`]); the cache must only be shared across calls
/// passing the same `prog` (the staged flow guarantees this by owning one
/// cache per estimated-program artifact).
pub fn partition_with_candidates(
    prog: &DecompiledProgram,
    set: &CandidateSet,
    total_sw_cycles: u64,
    options: &PartitionOptions,
    budget: &ResourceBudget,
    library: &TechLibrary,
    cache: Option<&binpart_synth::EstimateCache>,
) -> Partition {
    let data_end = set.data_end;
    let mut log = Vec::new();
    // min_share filter (deferred from harvest so the candidate set is
    // option-independent), then profile ranking.
    let mut candidates: Vec<&Candidate> = set
        .candidates
        .iter()
        .filter(|c| (c.sw_cycles as f64) >= options.min_share * total_sw_cycles as f64)
        .collect();
    candidates.sort_by_key(|c| std::cmp::Reverse(c.sw_cycles));

    let mut kernels: Vec<SelectedKernel> = Vec::new();
    let mut area_used = 0u64;
    let mut covered = 0u64;
    let mut taken: Vec<usize> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();

    /// Why a candidate was not selected.
    enum Reject {
        /// Synthesis itself failed — a per-region degradation, diagnosed.
        Synth(binpart_synth::SynthError),
        /// Would blow the area budget — a normal heuristic outcome.
        Area,
        /// Hardware would not beat software — a normal heuristic outcome.
        Unsuitable,
    }

    let try_select = |c: &Candidate,
                      mem_in_bram: bool,
                      bram_bytes: u64,
                      area_used: u64|
     -> Result<SynthesisResult, Reject> {
        let f = &prog.functions[c.func_index];
        let input = SynthesisInput {
            function: f,
            region: c.blocks.clone(),
            mem_in_bram,
            bram_bytes,
            budget: *budget,
            library: library.clone(),
        };
        let r = match cache {
            Some(cache) => cache
                .synthesize(c.func_index, &input)
                .map_err(Reject::Synth)?,
            None => synthesize(&input).map_err(Reject::Synth)?,
        };
        if area_used + r.area.gate_equivalents > options.area_budget_gates {
            return Err(Reject::Area);
        }
        // Suitability gate: the hardware must actually be faster than the
        // software it replaces.
        let hw_time = r.timing.hw_cycles as f64 / (r.timing.clock_mhz * 1e6);
        let sw_time = c.sw_cycles as f64 / options.cpu_clock_hz;
        if hw_time >= sw_time * 0.7 {
            return Err(Reject::Unsuitable);
        }
        Ok(r)
    };

    // A candidate can be retried across steps; diagnose each synth
    // failure once per region.
    let note_synth = |diagnostics: &mut Vec<Diagnostic>, name: &str, rej: &Reject| {
        if let Reject::Synth(e) = rej {
            if !diagnostics
                .iter()
                .any(|d| d.stage == FlowStage::Synth && d.region == name)
            {
                diagnostics.push(Diagnostic::new(FlowStage::Synth, name, e.to_string()));
            }
        }
    };

    // ---- step 1: most frequent loops to ~coverage ----
    for (ci, c) in candidates.iter().enumerate() {
        if kernels.len() >= options.max_kernels {
            break;
        }
        if (covered as f64) >= options.coverage * total_sw_cycles as f64 {
            break;
        }
        let synth = match try_select(c, false, 0, area_used) {
            Ok(synth) => synth,
            Err(rej) => {
                note_synth(&mut diagnostics, &c.name, &rej);
                log.push(format!("step1: {} skipped (area/synth)", c.name));
                continue;
            }
        };
        area_used += synth.area.gate_equivalents;
        covered += c.sw_cycles;
        log.push(format!(
            "step1: {} selected ({} cycles, {} gates)",
            c.name, c.sw_cycles, synth.area.gate_equivalents
        ));
        kernels.push(SelectedKernel {
            func_index: c.func_index,
            blocks: c.blocks.clone(),
            header: c.header,
            name: c.name.clone(),
            sw_cycles: c.sw_cycles,
            invocations: c.invocations,
            mem_in_bram: false,
            bram_bytes: 0,
            regions: c.regions.clone(),
            synth,
            step: 1,
        });
        taken.push(ci);
    }

    // ---- step 2: migrate memory to block RAM, pull in aliasing regions ----
    if options.alias_step {
        let mut shared_bases: std::collections::BTreeSet<u32> =
            std::collections::BTreeSet::new();
        for k in &kernels {
            shared_bases.extend(k.regions.globals.iter().copied());
        }
        for k in &mut kernels {
            if !k.regions.fully_resolved() || k.regions.globals.is_empty() {
                continue;
            }
            let bytes: u64 = k
                .regions
                .globals
                .iter()
                .map(|&b| alias::extent_of(&shared_bases, b, data_end) as u64)
                .sum();
            let c = Candidate {
                func_index: k.func_index,
                blocks: k.blocks.clone(),
                header: k.header,
                name: k.name.clone(),
                sw_cycles: k.sw_cycles,
                invocations: k.invocations,
                regions: k.regions.clone(),
                suitability: 1.0,
            };
            let prev_area = k.synth.area.gate_equivalents;
            // A BRAM re-synthesis failure is not a degradation: the kernel
            // stays in hardware with its step-1 synthesis.
            if let Ok(synth) = try_select(&c, true, bytes, area_used - prev_area) {
                area_used = area_used - prev_area + synth.area.gate_equivalents;
                log.push(format!(
                    "step2: {} memory ({} bytes) moved to BRAM",
                    k.name, bytes
                ));
                k.mem_in_bram = true;
                k.bram_bytes = bytes;
                k.synth = synth;
            }
        }
        // Pull in other candidates touching the same arrays.
        for (ci, c) in candidates.iter().enumerate() {
            if taken.contains(&ci) || kernels.len() >= options.max_kernels {
                continue;
            }
            if c.regions.globals.is_empty()
                || !c.regions.globals.iter().any(|b| shared_bases.contains(b))
            {
                continue;
            }
            let bram = c.regions.fully_resolved();
            let synth = match try_select(c, bram, 0, area_used) {
                Ok(synth) => synth,
                Err(rej) => {
                    note_synth(&mut diagnostics, &c.name, &rej);
                    continue;
                }
            };
            area_used += synth.area.gate_equivalents;
            log.push(format!("step2: {} joins (shares arrays)", c.name));
            kernels.push(SelectedKernel {
                func_index: c.func_index,
                blocks: c.blocks.clone(),
                header: c.header,
                name: c.name.clone(),
                sw_cycles: c.sw_cycles,
                invocations: c.invocations,
                mem_in_bram: bram,
                bram_bytes: 0,
                regions: c.regions.clone(),
                synth,
                step: 2,
            });
            taken.push(ci);
        }
    }

    // ---- step 3: greedy fill by weight × suitability ----
    let mut rest: Vec<usize> = (0..candidates.len())
        .filter(|i| !taken.contains(i))
        .collect();
    rest.sort_by(|&a, &b| {
        let sa = candidates[a].sw_cycles as f64 * candidates[a].suitability;
        let sb = candidates[b].sw_cycles as f64 * candidates[b].suitability;
        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for ci in rest {
        if kernels.len() >= options.max_kernels {
            break;
        }
        let c = &candidates[ci];
        let bram = c.regions.fully_resolved() && options.alias_step;
        let synth = match try_select(c, bram, 0, area_used) {
            Ok(synth) => synth,
            Err(rej) => {
                note_synth(&mut diagnostics, &c.name, &rej);
                log.push(format!("step3: {} rejected (area)", c.name));
                continue;
            }
        };
        area_used += synth.area.gate_equivalents;
        log.push(format!("step3: {} added", c.name));
        kernels.push(SelectedKernel {
            func_index: c.func_index,
            blocks: c.blocks.clone(),
            header: c.header,
            name: c.name.clone(),
            sw_cycles: c.sw_cycles,
            invocations: c.invocations,
            mem_in_bram: bram,
            bram_bytes: 0,
            regions: c.regions.clone(),
            synth,
            step: 3,
        });
    }

    Partition {
        kernels,
        total_area_gates: area_used,
        total_sw_cycles,
        log,
        diagnostics,
    }
}
