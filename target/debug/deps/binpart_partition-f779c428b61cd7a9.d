/root/repo/target/debug/deps/binpart_partition-f779c428b61cd7a9.d: crates/partition/src/lib.rs

/root/repo/target/debug/deps/binpart_partition-f779c428b61cd7a9: crates/partition/src/lib.rs

crates/partition/src/lib.rs:
