//! Runs the full 20-benchmark suite through the flow (the paper's Table 1)
//! and prints a per-benchmark summary, including the two CDFG-recovery
//! failures on jump-table benchmarks.
//!
//! Run with: `cargo run --release --example full_suite`

use binpart::core::flow::{Flow, FlowOptions};
use binpart::core::{DecompileError, FlowError};
use binpart::minicc::OptLevel;
use binpart::workloads::suite;

fn main() {
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>8}",
        "benchmark", "suite", "speedup", "energy%", "area"
    );
    let mut failures = 0;
    for b in suite() {
        let binary = b.compile(OptLevel::O1).expect("suite compiles");
        match Flow::new(FlowOptions::default()).run(&binary) {
            Ok(r) => println!(
                "{:<12} {:<11} {:>8.2}x {:>8.0}% {:>8}",
                b.name,
                b.suite.label(),
                r.hybrid.app_speedup,
                r.hybrid.energy_savings * 100.0,
                r.hybrid.total_area_gates
            ),
            Err(FlowError::Decompile(DecompileError::IndirectJump { pc })) => {
                failures += 1;
                println!(
                    "{:<12} {:<11} CDFG recovery failed: indirect jump at {pc:#x}",
                    b.name,
                    b.suite.label()
                );
            }
            Err(e) => println!("{:<12} error: {e}", b.name),
        }
    }
    println!("\n{failures} of 20 failed CDFG recovery (paper: 2 of 20)");
}
