/root/repo/target/debug/deps/binpart_par-0df6ec25328be2af.d: crates/par/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_par-0df6ec25328be2af.rmeta: crates/par/src/lib.rs Cargo.toml

crates/par/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
