//! Hybrid co-simulation wall clock: the full cosimulate stage (software
//! oracle + FSMD execution + per-invocation store differential) per
//! benchmark cell, vs the plain software profile run it verifies against.
//!
//! `cargo bench -p binpart-bench --bench cosim -- --smoke` runs the CI
//! differential smoke instead: over the four-benchmark subset × every
//! OptLevel, the hybrid exit must be bit-identical to pure software with
//! zero store divergences and real hardware executed, and `BENCH_sim.json`
//! (if present) must carry the co-simulation columns non-null.

use binpart_core::flow::FlowOptions;
use binpart_core::stage::StagedFlow;
use binpart_minicc::OptLevel;
use criterion::{criterion_group, Criterion};

fn options() -> FlowOptions {
    let mut options = FlowOptions::default();
    options.decompile.recover_jump_tables = true;
    options
}

fn bench(c: &mut Criterion) {
    let b = binpart_workloads::suite()
        .into_iter()
        .find(|b| b.name == "autcor00")
        .expect("suite has autcor00");
    let binary = b.compile(OptLevel::O1).expect("compiles");
    let mut group = c.benchmark_group("cosim");
    group.sample_size(10);
    group.bench_function("cosimulate_autcor00_o1", |bench| {
        bench.iter(|| {
            let staged = StagedFlow::new(&binary);
            let report = staged.cosimulate(&options()).expect("cosimulates");
            std::hint::black_box(report.hw_invocations())
        })
    });
    group.finish();
}

/// CI differential smoke: hybrid Exit == software Exit on the benchmark
/// subset, zero store divergences, hardware actually executed.
fn smoke() {
    let mut hw_invocations = 0u64;
    for b in binpart_workloads::opt_level_subset() {
        for level in OptLevel::ALL {
            let tag = format!("{} {level}", b.name);
            let binary = b.compile(level).expect("compiles");
            let staged = StagedFlow::new(&binary);
            let report = staged.cosimulate(&options()).expect("cosimulates");
            assert!(
                report.exit_bit_identical,
                "{tag}: hybrid exit diverged from pure software"
            );
            assert_eq!(
                report.store_mismatches(),
                0,
                "{tag}: hardware store sequence diverged"
            );
            hw_invocations += report.hw_invocations();
        }
    }
    assert!(
        hw_invocations > 0,
        "smoke subset executed no hardware at all"
    );
    println!("smoke: {hw_invocations} hardware invocations, all exits bit-identical");
    binpart_bench::assert_snapshot_columns(&[
        "cosim_cycles_per_sec",
        "estimate_error_pct_mean",
        "estimate_error_pct_max",
    ]);
    println!("smoke: PASS");
}

criterion_group!(benches, bench);

// A hand-rolled `criterion_main!`: identical dispatch, plus the `--smoke`
// CI mode (single-pass assertions instead of sampled measurement).
fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
    } else {
        benches();
    }
}
