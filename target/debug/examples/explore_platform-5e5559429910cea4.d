/root/repo/target/debug/examples/explore_platform-5e5559429910cea4.d: examples/explore_platform.rs

/root/repo/target/debug/examples/explore_platform-5e5559429910cea4: examples/explore_platform.rs

examples/explore_platform.rs:
