/root/repo/target/debug/deps/binpart-e4f86fee90a5001b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart-e4f86fee90a5001b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
