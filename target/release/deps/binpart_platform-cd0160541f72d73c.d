/root/repo/target/release/deps/binpart_platform-cd0160541f72d73c.d: crates/platform/src/lib.rs

/root/repo/target/release/deps/binpart_platform-cd0160541f72d73c: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
