/root/repo/target/debug/deps/binpart_partition-f42beecdacb9ff58.d: crates/partition/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_partition-f42beecdacb9ff58.rmeta: crates/partition/src/lib.rs Cargo.toml

crates/partition/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
