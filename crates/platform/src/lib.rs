//! Microprocessor/FPGA platform models: clocks, power, communication, and
//! the hybrid runtime/energy accounting the paper's evaluation reports.
//!
//! The paper evaluates a *hypothetical* platform — a MIPS core at 40, 200,
//! or 400 MHz next to a Xilinx Virtex-II — precisely so that platform
//! parameters can be swept. This crate is that parameterization: given a
//! software cycle count and per-kernel hardware estimates, it produces the
//! execution-time and energy numbers of the evaluation tables.
//!
//! # Example
//!
//! ```
//! use binpart_platform::{Platform, HardwareKernel};
//!
//! let platform = Platform::mips_virtex2(200_000_000.0);
//! let kernel = HardwareKernel {
//!     name: "fir".into(),
//!     invocations: 1_000,
//!     hw_cycles: 60_000,
//!     clock_hz: 60_000_000.0,
//!     sw_cycles_replaced: 9_000_000,
//!     area_gates: 20_000,
//!     bram_transfer_words: 0,
//! };
//! let report = platform.hybrid(10_000_000, &[kernel]);
//! assert!(report.app_speedup > 1.0);
//! assert!(report.energy_savings > 0.0 && report.energy_savings < 1.0);
//! ```

use std::fmt;

/// Microprocessor model.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorSpec {
    /// Display name.
    pub name: String,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Power while executing, in watts.
    pub active_power_w: f64,
    /// Power while idling (waiting on the FPGA), in watts.
    pub idle_power_w: f64,
}

impl ProcessorSpec {
    /// A MIPS-class core at `clock_hz`, with affine power
    /// (`P = P_static + k·f`, anchored at 0.5 W / 200 MHz): leakage and I/O
    /// dominate at low clocks, which is what makes slow platforms benefit
    /// most from partitioning, matching the paper's 40/200/400 MHz sweep.
    pub fn mips(clock_hz: f64) -> ProcessorSpec {
        let active = 0.15 + 1.75e-9 * clock_hz;
        ProcessorSpec {
            name: format!("MIPS @ {} MHz", clock_hz / 1e6),
            clock_hz,
            active_power_w: active,
            idle_power_w: active * 0.65,
        }
    }
}

/// FPGA model (capacity + power coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaSpec {
    /// Display name.
    pub name: String,
    /// Usable capacity in gate equivalents.
    pub capacity_gates: u64,
    /// On-chip block-RAM capacity in bits.
    pub bram_bits: u64,
    /// Static power in watts.
    pub static_power_w: f64,
    /// Dynamic power coefficient: watts per (gate × MHz).
    pub dynamic_w_per_gate_mhz: f64,
}

impl FpgaSpec {
    /// A Xilinx Virtex-II–class device (XC2V250-ish usable region).
    pub fn virtex2() -> FpgaSpec {
        FpgaSpec {
            name: "Xilinx Virtex-II".into(),
            capacity_gates: 250_000,
            bram_bits: 48 * 18 * 1024,
            static_power_w: 0.12,
            dynamic_w_per_gate_mhz: 1.6e-6,
        }
    }

    /// Dynamic power of a design of `gates` at `clock_hz` with `activity`
    /// (0..1) switching activity.
    pub fn dynamic_power_w(&self, gates: u64, clock_hz: f64, activity: f64) -> f64 {
        self.dynamic_w_per_gate_mhz * gates as f64 * (clock_hz / 1e6) * activity
    }
}

/// CPU⇄FPGA communication model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    /// CPU cycles to start the accelerator and synchronize completion.
    pub invocation_overhead_cycles: u64,
    /// CPU cycles to move one 32-bit word between main memory and on-FPGA
    /// block RAM (the partitioning step-2 array migration). Charged per
    /// [`HardwareKernel::bram_transfer_words`]; kernels that leave their
    /// arrays in main memory report zero words and pay nothing.
    pub transfer_cycles_per_word: u64,
}

impl Default for CommModel {
    fn default() -> Self {
        CommModel {
            invocation_overhead_cycles: 40,
            transfer_cycles_per_word: 2,
        }
    }
}

/// A complete platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// The processor.
    pub cpu: ProcessorSpec,
    /// The FPGA.
    pub fpga: FpgaSpec,
    /// Communication costs.
    pub comm: CommModel,
}

impl Platform {
    /// The paper's hypothetical MIPS + Virtex-II platform at `clock_hz`.
    pub fn mips_virtex2(clock_hz: f64) -> Platform {
        Platform {
            cpu: ProcessorSpec::mips(clock_hz),
            fpga: FpgaSpec::virtex2(),
            comm: CommModel::default(),
        }
    }

    /// Computes the hybrid execution-time/energy report.
    ///
    /// `sw_total_cycles` is the profiled all-software cycle count; each
    /// [`HardwareKernel`] describes one region moved to the FPGA.
    pub fn hybrid(&self, sw_total_cycles: u64, kernels: &[HardwareKernel]) -> HybridReport {
        let f_cpu = self.cpu.clock_hz;
        let sw_time = sw_total_cycles as f64 / f_cpu;
        let mut replaced: u64 = 0;
        let mut hw_time = 0.0f64;
        let mut comm_cycles: u64 = 0;
        let mut area: u64 = 0;
        let mut kernel_reports = Vec::new();
        let mut fpga_dyn_energy = 0.0;
        for k in kernels {
            replaced += k.sw_cycles_replaced;
            let t_hw = k.hw_cycles as f64 / k.clock_hz;
            hw_time += t_hw;
            comm_cycles += k.invocations * self.comm.invocation_overhead_cycles
                + k.bram_transfer_words * self.comm.transfer_cycles_per_word;
            area += k.area_gates;
            fpga_dyn_energy +=
                self.fpga.dynamic_power_w(k.area_gates, k.clock_hz, 0.25) * t_hw;
            let t_sw_kernel = k.sw_cycles_replaced as f64 / f_cpu;
            kernel_reports.push(KernelReport {
                name: k.name.clone(),
                kernel_speedup: if t_hw > 0.0 { t_sw_kernel / t_hw } else { 1.0 },
                hw_time_s: t_hw,
                sw_time_s: t_sw_kernel,
                area_gates: k.area_gates,
                clock_mhz: k.clock_hz / 1e6,
            });
        }
        let replaced = replaced.min(sw_total_cycles);
        let cpu_cycles_remaining = sw_total_cycles - replaced + comm_cycles;
        let cpu_time = cpu_cycles_remaining as f64 / f_cpu;
        let hybrid_time = cpu_time + hw_time;
        let app_speedup = if hybrid_time > 0.0 {
            sw_time / hybrid_time
        } else {
            1.0
        };
        // Energy.
        let sw_energy = self.cpu.active_power_w * sw_time + self.fpga.static_power_w * 0.0;
        let hybrid_energy = self.cpu.active_power_w * cpu_time
            + self.cpu.idle_power_w * hw_time
            + self.fpga.static_power_w * hybrid_time
            + fpga_dyn_energy;
        let energy_savings = if sw_energy > 0.0 {
            1.0 - hybrid_energy / sw_energy
        } else {
            0.0
        };
        HybridReport {
            sw_time_s: sw_time,
            hybrid_time_s: hybrid_time,
            app_speedup,
            sw_energy_j: sw_energy,
            hybrid_energy_j: hybrid_energy,
            energy_savings,
            total_area_gates: area,
            kernels: kernel_reports,
        }
    }
}

/// One region implemented in hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareKernel {
    /// Kernel name (diagnostics).
    pub name: String,
    /// Number of CPU→FPGA invocations.
    pub invocations: u64,
    /// Total FPGA cycles across all invocations.
    pub hw_cycles: u64,
    /// Achieved FPGA clock for this kernel, Hz.
    pub clock_hz: f64,
    /// Profiled CPU cycles this kernel replaces.
    pub sw_cycles_replaced: u64,
    /// Kernel area in gate equivalents.
    pub area_gates: u64,
    /// 32-bit words moved between main memory and block RAM (one-time
    /// array migration; zero when arrays stay in main memory).
    pub bram_transfer_words: u64,
}

/// Per-kernel slice of a [`HybridReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub name: String,
    /// Software-time / hardware-time for this kernel alone.
    pub kernel_speedup: f64,
    /// Hardware execution time (s).
    pub hw_time_s: f64,
    /// Replaced software time (s).
    pub sw_time_s: f64,
    /// Area in gate equivalents.
    pub area_gates: u64,
    /// Achieved clock (MHz).
    pub clock_mhz: f64,
}

/// Hybrid execution-time and energy result.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridReport {
    /// All-software execution time (s).
    pub sw_time_s: f64,
    /// Partitioned execution time (s).
    pub hybrid_time_s: f64,
    /// Application speedup (sw/hybrid).
    pub app_speedup: f64,
    /// All-software energy (J).
    pub sw_energy_j: f64,
    /// Partitioned energy (J).
    pub hybrid_energy_j: f64,
    /// `1 - hybrid/sw` energy fraction saved.
    pub energy_savings: f64,
    /// Sum of kernel areas (gate equivalents).
    pub total_area_gates: u64,
    /// Per-kernel details.
    pub kernels: Vec<KernelReport>,
}

impl HybridReport {
    /// Mean kernel speedup across kernels (1.0 when none).
    pub fn mean_kernel_speedup(&self) -> f64 {
        if self.kernels.is_empty() {
            return 1.0;
        }
        self.kernels.iter().map(|k| k.kernel_speedup).sum::<f64>() / self.kernels.len() as f64
    }
}

impl fmt::Display for HybridReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "speedup {:.2}x, energy savings {:.0}%, area {} gates",
            self.app_speedup,
            self.energy_savings * 100.0,
            self.total_area_gates
        )
    }
}

/// Geometric-mean helper used by the table harness.
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(replaced: u64, hw_cycles: u64) -> HardwareKernel {
        HardwareKernel {
            name: "k".into(),
            invocations: 100,
            hw_cycles,
            clock_hz: 50e6,
            sw_cycles_replaced: replaced,
            area_gates: 20_000,
            bram_transfer_words: 0,
        }
    }

    #[test]
    fn bram_transfer_words_cost_cpu_cycles() {
        let p = Platform::mips_virtex2(200e6);
        let base = p.hybrid(1_000_000, &[kernel(900_000, 10_000)]);
        let mut with_transfer = kernel(900_000, 10_000);
        with_transfer.bram_transfer_words = 100_000;
        let heavy = p.hybrid(1_000_000, &[with_transfer]);
        assert!(heavy.app_speedup < base.app_speedup);
    }

    #[test]
    fn no_kernels_means_no_speedup() {
        let p = Platform::mips_virtex2(200e6);
        let r = p.hybrid(1_000_000, &[]);
        assert!((r.app_speedup - 1.0).abs() < 1e-9);
        assert!(r.energy_savings <= 0.0 + 1e-9);
    }

    #[test]
    fn amdahl_limits_app_speedup() {
        let p = Platform::mips_virtex2(200e6);
        // 90% of time in the kernel, hardware "free":
        let r = p.hybrid(1_000_000, &[kernel(900_000, 1)]);
        assert!(r.app_speedup < 10.0 + 1e-6, "bounded by Amdahl");
        assert!(r.app_speedup > 5.0, "but substantial: {}", r.app_speedup);
    }

    #[test]
    fn kernel_speedup_exceeds_app_speedup() {
        let p = Platform::mips_virtex2(200e6);
        let r = p.hybrid(1_000_000, &[kernel(900_000, 2_000)]);
        assert!(r.mean_kernel_speedup() > r.app_speedup);
    }

    #[test]
    fn slower_cpu_gets_bigger_speedup_and_savings() {
        // The paper's platform sweep shape: 40 MHz > 200 MHz > 400 MHz.
        let mk = |hz: f64| {
            let p = Platform::mips_virtex2(hz);
            // same program: cycle counts identical across clocks
            p.hybrid(10_000_000, &[kernel(9_000_000, 150_000)])
        };
        let r40 = mk(40e6);
        let r200 = mk(200e6);
        let r400 = mk(400e6);
        assert!(r40.app_speedup > r200.app_speedup);
        assert!(r200.app_speedup > r400.app_speedup);
        assert!(
            r40.energy_savings > r200.energy_savings
                && r200.energy_savings > r400.energy_savings,
            "{} {} {}",
            r40.energy_savings,
            r200.energy_savings,
            r400.energy_savings
        );
    }

    #[test]
    fn energy_model_is_consistent() {
        let p = Platform::mips_virtex2(200e6);
        let r = p.hybrid(10_000_000, &[kernel(9_000_000, 150_000)]);
        assert!(r.hybrid_energy_j > 0.0);
        assert!(r.sw_energy_j > r.hybrid_energy_j);
        assert!(r.energy_savings > 0.3 && r.energy_savings < 0.95);
    }

    #[test]
    fn comm_overhead_reduces_speedup() {
        let mut p = Platform::mips_virtex2(200e6);
        let base = p.hybrid(1_000_000, &[kernel(900_000, 10_000)]);
        p.comm.invocation_overhead_cycles = 5_000;
        let heavy = p.hybrid(1_000_000, &[kernel(900_000, 10_000)]);
        assert!(heavy.app_speedup < base.app_speedup);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean([]), 0.0);
    }

    #[test]
    fn processor_power_has_static_floor() {
        let a = ProcessorSpec::mips(40e6);
        let b = ProcessorSpec::mips(400e6);
        // affine: 10x clock is far less than 10x power
        assert!(b.active_power_w / a.active_power_w < 5.0);
        assert!(b.active_power_w > a.active_power_w);
        assert!(a.active_power_w > 0.15);
    }
}
