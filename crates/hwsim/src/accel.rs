//! Binding a compiled [`Fsmd`] to CPU architectural state: live-in
//! resolution and the [`binpart_mips::hybrid::Accelerator`] implementation.
//!
//! A kernel's SSA live-ins (values computed before the region and read
//! inside it) must be materialized from the CPU's architectural state at
//! region entry. Three sources, tried in order:
//!
//! 1. **Constant recovery** — the decompiler's constant propagation turns
//!    most loop-invariant live-ins (array bases, induction seeds,
//!    accumulator inits) into `Const` defs or short pure-op chains over
//!    constants; these fold to immediates at compile time.
//! 2. **Instruction provenance** — every lifted op carries the pc of its
//!    originating machine instruction; the instruction's destination
//!    register (via [`binpart_mips::Instr::def`]) names the machine
//!    register holding the value at region entry. A call's result lives in
//!    `$v0` per the calling convention.
//! 3. **Function live-ins** — SSA names representing register values at
//!    *function* entry (recorded by `binpart_core`'s decompiler) map
//!    directly to their machine registers.
//!
//! A live-in none of these resolve makes the kernel *unmappable*: the
//! accelerator is not built and every invocation runs in software (counted
//! by the co-simulation report). A *stale* binding — the machine register
//! was overwritten between the def and region entry — cannot be detected
//! statically; it surfaces as a store-sequence divergence in the hybrid
//! machine's per-invocation differential, which is exactly what that check
//! exists to catch.

use crate::fsmd::{Fsmd, FsmdError, OverlayBus};
use crate::hwtel::{HwTelemetry, NullHwTelemetry};
use binpart_cdfg::ir::{BinOp, BlockId, Function, Inst, Op, Operand, UnOp, VReg};
use binpart_mips::hybrid::{AccelOutcome, Accelerator, HwInvocation};
use binpart_mips::sim::Memory;
use binpart_mips::{Binary, Reg};
use binpart_synth::{ResourceBudget, TechLibrary};
use std::fmt;

/// Where one live-in value comes from at invocation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LiveInSource {
    /// A compile-time constant (recovered from the CDFG).
    Const(u32),
    /// The CPU register holding the value at region entry.
    MachineReg(u8),
}

/// Why a kernel could not be packaged as an accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccelBuildError {
    /// A live-in SSA value has no recoverable CPU-state source.
    UnmappableLiveIn {
        /// The unresolvable register.
        vreg: VReg,
    },
    /// The region is not executable (calls, malformed terminators, entry
    /// outside the region).
    Unexecutable,
}

impl fmt::Display for AccelBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelBuildError::UnmappableLiveIn { vreg } => {
                write!(f, "live-in {vreg} has no recoverable CPU-state source")
            }
            AccelBuildError::Unexecutable => write!(f, "region is not executable"),
        }
    }
}

impl std::error::Error for AccelBuildError {}

impl From<FsmdError> for AccelBuildError {
    fn from(_: FsmdError) -> Self {
        AccelBuildError::Unexecutable
    }
}

/// One kernel packaged as a hardware accelerator: the compiled FSMD plus
/// its live-in binding plan.
#[derive(Debug)]
pub struct KernelAccel<'f> {
    fsmd: Fsmd<'f>,
    plan: Vec<(VReg, LiveInSource)>,
    vreg_count: usize,
    /// Per-invocation hardware cycle budget (runaway guard).
    pub cycle_limit: u64,
}

impl<'f> KernelAccel<'f> {
    /// Compiles the FSMD for `region` of `f` and resolves its live-ins.
    ///
    /// `function_live_ins` maps original (pre-SSA) machine registers to the
    /// SSA names of their function-entry values — source 3 above; pass an
    /// empty slice when unavailable. Scheduling inputs must match the
    /// synthesis estimate the execution is compared against.
    ///
    /// # Errors
    ///
    /// [`AccelBuildError`] when the region cannot execute or a live-in is
    /// unmappable.
    #[allow(clippy::too_many_arguments)]
    pub fn compile(
        f: &'f Function,
        region: &[BlockId],
        entry: BlockId,
        budget: &ResourceBudget,
        library: &TechLibrary,
        mem_in_bram: bool,
        binary: &Binary,
        function_live_ins: &[(VReg, VReg)],
    ) -> Result<KernelAccel<'f>, AccelBuildError> {
        let fsmd = Fsmd::compile(f, region, entry, budget, library, mem_in_bram)?;
        let resolver = Resolver::new(f, binary, function_live_ins);
        let mut plan = Vec::new();
        for v in fsmd.live_ins() {
            match resolver.resolve(v, 0) {
                Some(src) => plan.push((v, src)),
                None => return Err(AccelBuildError::UnmappableLiveIn { vreg: v }),
            }
        }
        Ok(KernelAccel {
            fsmd,
            plan,
            vreg_count: f.vreg_count() as usize,
            cycle_limit: 1 << 28,
        })
    }

    /// The live-in binding plan (diagnostics).
    pub fn plan(&self) -> &[(VReg, LiveInSource)] {
        &self.plan
    }

    /// The compiled FSMD (telemetry sizing and analytic attribution).
    pub fn fsmd(&self) -> &Fsmd<'f> {
        &self.fsmd
    }

    /// Executes one invocation against CPU state, returning the hardware
    /// cycle count and store log, or the fault.
    ///
    /// # Errors
    ///
    /// Any [`FsmdError`] from the interpreter.
    pub fn execute(
        &self,
        regs: &[u32; 32],
        mem: &Memory,
    ) -> Result<HwInvocation, FsmdError> {
        self.execute_with(regs, mem, &NullHwTelemetry)
    }

    /// [`KernelAccel::execute`] with a live [`HwTelemetry`] sink. Drives
    /// the sink's invocation lifecycle: `invocation_begin` before the
    /// FSMD runs, then `invocation_commit` on success or
    /// `invocation_abort` on a fault — so a recording sink's totals cover
    /// exactly the invocations whose cycles the hybrid machine charged.
    ///
    /// # Errors
    ///
    /// Any [`FsmdError`] from the interpreter.
    pub fn execute_with<H: HwTelemetry>(
        &self,
        regs: &[u32; 32],
        mem: &Memory,
        tel: &H,
    ) -> Result<HwInvocation, FsmdError> {
        let mut vals = vec![0u32; self.vreg_count];
        for &(v, src) in &self.plan {
            vals[v.index()] = match src {
                LiveInSource::Const(c) => c,
                LiveInSource::MachineReg(r) => regs[(r & 31) as usize],
            };
        }
        let mut bus = OverlayBus::new(mem);
        if H::ENABLED {
            tel.invocation_begin();
        }
        match self.fsmd.execute_tel(&mut vals, &mut bus, self.cycle_limit, tel) {
            Ok(run) => {
                if H::ENABLED {
                    tel.invocation_commit();
                }
                Ok(HwInvocation {
                    hw_cycles: run.cycles,
                    stores: bus.stores,
                })
            }
            Err(e) => {
                if H::ENABLED {
                    tel.invocation_abort();
                }
                Err(e)
            }
        }
    }
}

/// A region-indexed set of optional accelerators — the
/// [`Accelerator`] the hybrid machine dispatches through. `None` slots
/// (unmappable kernels) decline every invocation.
#[derive(Debug, Default)]
pub struct KernelSet<'f> {
    /// One slot per hybrid-machine region, in region order.
    pub kernels: Vec<Option<KernelAccel<'f>>>,
}

impl Accelerator for KernelSet<'_> {
    fn invoke(&mut self, region: usize, regs: &[u32; 32], mem: &Memory) -> AccelOutcome {
        match self.kernels.get(region).and_then(|k| k.as_ref()) {
            Some(accel) => match accel.execute(regs, mem) {
                Ok(inv) => AccelOutcome::Executed(inv),
                Err(_) => AccelOutcome::Faulted,
            },
            None => AccelOutcome::Declined,
        }
    }
}

/// Live-in resolution over one function.
struct Resolver<'a> {
    f: &'a Function,
    binary: &'a Binary,
    function_live_ins: &'a [(VReg, VReg)],
    /// Def site per register: (block, op index), dense by [`VReg::index`].
    defs: Vec<Option<(BlockId, u32)>>,
}

impl<'a> Resolver<'a> {
    fn new(
        f: &'a Function,
        binary: &'a Binary,
        function_live_ins: &'a [(VReg, VReg)],
    ) -> Resolver<'a> {
        let mut defs = vec![None; f.vreg_count() as usize];
        for b in f.block_ids() {
            for (k, inst) in f.block(b).ops.iter().enumerate() {
                if let Some(d) = inst.op.dst() {
                    defs[d.index()] = Some((b, k as u32));
                }
            }
        }
        Resolver {
            f,
            binary,
            function_live_ins,
            defs,
        }
    }

    fn def_inst(&self, v: VReg) -> Option<&'a Inst> {
        let (b, k) = self.defs.get(v.index()).copied().flatten()?;
        Some(&self.f.block(b).ops[k as usize])
    }

    /// Constant-folds `v` through pure ops, if its whole backward slice is
    /// constant.
    fn const_eval(&self, v: VReg, depth: u32) -> Option<u32> {
        if depth > 16 {
            return None;
        }
        let inst = self.def_inst(v)?;
        let operand = |o: &Operand| -> Option<u32> {
            match o {
                Operand::Const(c) => Some(*c as u32),
                Operand::Reg(r) => self.const_eval(*r, depth + 1),
            }
        };
        match &inst.op {
            Op::Const { value, .. } => Some(*value as u32),
            Op::Copy { src, .. } => operand(src),
            Op::Un { op, src, .. } => {
                let s = operand(src)?;
                Some(UnOp::fold(*op, s as i64) as u32)
            }
            Op::Bin { op, lhs, rhs, .. } => {
                let a = operand(lhs)?;
                let b = operand(rhs)?;
                Some(BinOp::fold(*op, a as i64, b as i64) as u32)
            }
            Op::Phi { args, .. } => {
                // A phi whose incoming values all fold to the same constant.
                let mut folded: Option<u32> = None;
                for (_, a) in args {
                    let c = operand(a)?;
                    match folded {
                        None => folded = Some(c),
                        Some(prev) if prev == c => {}
                        Some(_) => return None,
                    }
                }
                folded
            }
            _ => None,
        }
    }

    fn resolve(&self, v: VReg, depth: u32) -> Option<LiveInSource> {
        if let Some(c) = self.const_eval(v, depth) {
            return Some(LiveInSource::Const(c));
        }
        match self.def_inst(v) {
            Some(inst) => {
                if let Op::Call { .. } = inst.op {
                    // Calling convention: results arrive in $v0.
                    return Some(LiveInSource::MachineReg(Reg::V0.number()));
                }
                // Provenance: the originating machine instruction's
                // destination register holds the value.
                let pc = inst.pc?;
                let idx = pc.wrapping_sub(self.binary.text_base) / 4;
                let word = *self.binary.text.get(idx as usize)?;
                let instr = binpart_mips::decode(word).ok()?;
                instr.def().map(|r| LiveInSource::MachineReg(r.number()))
            }
            None => {
                // No def: a function parameter or a function live-in name.
                if let Some(pos) = self.f.params.iter().position(|&p| p == v) {
                    if pos < 4 {
                        return Some(LiveInSource::MachineReg(Reg::A0.number() + pos as u8));
                    }
                    return None;
                }
                let (orig, _) = self
                    .function_live_ins
                    .iter()
                    .find(|(_, name)| *name == v)?;
                if orig.index() < 32 {
                    Some(LiveInSource::MachineReg(orig.0 as u8))
                } else {
                    None // HI/LO are not visible through the register file
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binpart_cdfg::ir::Terminator;
    use binpart_cdfg::ssa;

    /// A loop over `a[0x1000 + 4i]`, accumulating into a value returned at
    /// exit; live-ins resolve to constants after SSA (no opt passes run).
    fn mem_kernel() -> (Function, Vec<BlockId>, BlockId) {
        let mut f = Function::new("k");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let c = f.new_vreg();
        let addr = f.new_vreg();
        let sh = f.new_vreg();
        let x = f.new_vreg();
        let x2 = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 0 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LtS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(8),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Shl,
            dst: sh,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(2),
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: addr,
            lhs: Operand::Reg(sh),
            rhs: Operand::Const(0x1000),
        });
        f.block_mut(body).push(Op::Load {
            dst: x,
            addr: Operand::Reg(addr),
            width: binpart_cdfg::ir::MemWidth::W,
            signed: false,
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: x2,
            lhs: Operand::Reg(x),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).push(Op::Store {
            src: Operand::Reg(x2),
            addr: Operand::Reg(addr),
            width: binpart_cdfg::ir::MemWidth::W,
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return { value: None };
        ssa::construct(&mut f);
        let header = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .unwrap();
        let body = match f.block(header).term {
            Terminator::Branch { t, .. } => t,
            _ => unreachable!(),
        };
        (f, vec![header, body], header)
    }

    #[test]
    fn accel_executes_and_logs_increment_stores() {
        let (f, region, header) = mem_kernel();
        let binary = binpart_mips::BinaryBuilder::new().build();
        let accel = KernelAccel::compile(
            &f,
            &region,
            header,
            &ResourceBudget::default(),
            &TechLibrary::virtex2(),
            true,
            &binary,
            &[],
        )
        .unwrap();
        let mut mem = Memory::new();
        for k in 0..8u32 {
            mem.write_u32(0x1000 + 4 * k, 10 * k);
        }
        let regs = [0u32; 32];
        let inv = accel.execute(&regs, &mem).unwrap();
        assert_eq!(inv.stores.len(), 8);
        for (k, s) in inv.stores.iter().enumerate() {
            assert_eq!(s.addr, 0x1000 + 4 * k as u32);
            assert_eq!(s.value, 10 * k as u32 + 1);
            assert_eq!(s.bytes, 4);
        }
        assert!(inv.hw_cycles > 8, "cycles {}", inv.hw_cycles);
        assert_eq!(mem.read_u32(0x1000), 0, "overlay never commits");
    }

    #[test]
    fn unmappable_live_in_is_a_build_error() {
        // The region reads a register with no def anywhere: unmappable.
        let mut f = Function::new("um");
        let ghost = f.new_vreg();
        let d = f.new_vreg();
        let header = f.add_block();
        let exit = f.add_block();
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::Add,
            dst: d,
            lhs: Operand::Reg(ghost),
            rhs: Operand::Const(1),
        });
        f.block_mut(header).term = Terminator::Jump(exit);
        f.block_mut(exit).term = Terminator::Return { value: None };
        let binary = binpart_mips::BinaryBuilder::new().build();
        let err = KernelAccel::compile(
            &f,
            &[header],
            header,
            &ResourceBudget::default(),
            &TechLibrary::virtex2(),
            true,
            &binary,
            &[],
        )
        .unwrap_err();
        assert!(matches!(err, AccelBuildError::UnmappableLiveIn { .. }));
    }

    #[test]
    fn function_live_ins_map_to_machine_registers() {
        let mut f = Function::new("li");
        let name = f.new_vreg(); // represents $t0's entry value
        let d = f.new_vreg();
        let header = f.add_block();
        let exit = f.add_block();
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::Add,
            dst: d,
            lhs: Operand::Reg(name),
            rhs: Operand::Const(0),
        });
        f.block_mut(header).push(Op::Store {
            src: Operand::Reg(d),
            addr: Operand::Const(0x40),
            width: binpart_cdfg::ir::MemWidth::W,
        });
        f.block_mut(header).term = Terminator::Jump(exit);
        f.block_mut(exit).term = Terminator::Return { value: None };
        let binary = binpart_mips::BinaryBuilder::new().build();
        let t0 = VReg(u32::from(Reg::T0.number()));
        let accel = KernelAccel::compile(
            &f,
            &[header],
            header,
            &ResourceBudget::default(),
            &TechLibrary::virtex2(),
            true,
            &binary,
            &[(t0, name)],
        )
        .unwrap();
        assert_eq!(
            accel.plan(),
            &[(name, LiveInSource::MachineReg(Reg::T0.number()))]
        );
        let mut regs = [0u32; 32];
        regs[Reg::T0.number() as usize] = 1234;
        let mem = Memory::new();
        let inv = accel.execute(&regs, &mem).unwrap();
        assert_eq!(inv.stores[0].value, 1234);
    }
}
