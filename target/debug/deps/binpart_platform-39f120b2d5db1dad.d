/root/repo/target/debug/deps/binpart_platform-39f120b2d5db1dad.d: crates/platform/src/lib.rs

/root/repo/target/debug/deps/binpart_platform-39f120b2d5db1dad: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
