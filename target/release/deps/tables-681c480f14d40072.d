/root/repo/target/release/deps/tables-681c480f14d40072.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-681c480f14d40072: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
