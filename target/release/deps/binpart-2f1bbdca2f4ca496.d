/root/repo/target/release/deps/binpart-2f1bbdca2f4ca496.d: src/lib.rs

/root/repo/target/release/deps/binpart-2f1bbdca2f4ca496: src/lib.rs

src/lib.rs:
