/root/repo/target/debug/deps/binpart_partition-ff36f7d5f58e6bf5.d: crates/partition/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_partition-ff36f7d5f58e6bf5.rmeta: crates/partition/src/lib.rs Cargo.toml

crates/partition/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
