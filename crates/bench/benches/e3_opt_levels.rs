//! E3 (Table 3): flow cost per compiler optimization level.

use binpart_bench::run_one;
use binpart_minicc::OptLevel;
use binpart_workloads::opt_level_subset;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_levels");
    group.sample_size(10);
    let b = &opt_level_subset()[0];
    for level in OptLevel::ALL {
        group.bench_function(level.flag(), |bench| {
            bench.iter(|| run_one(std::hint::black_box(b), level, 200e6, true))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
