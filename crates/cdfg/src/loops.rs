//! Natural-loop detection, the loop-nesting forest, and induction-variable /
//! trip-count recovery.
//!
//! The paper's partitioner works at loop granularity: the profiler attributes
//! time to loops, the synthesizer pipelines them, and loop rerolling needs to
//! know trip counts. This module recovers all of that from the CFG.

use crate::cfg;
use crate::dom::Dominators;
use crate::ir::{BinOp, BlockId, Function, Op, Operand, Terminator, VReg};

/// A natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// Loop header (single entry of the natural loop).
    pub header: BlockId,
    /// All blocks in the loop, including the header.
    pub blocks: Vec<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// Blocks outside the loop that are branched to from inside.
    pub exits: Vec<BlockId>,
    /// Parent loop index in the forest (None for top-level loops).
    pub parent: Option<usize>,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
    /// Basic induction variable, when recognized.
    pub induction: Option<InductionVar>,
    /// Constant trip count, when derivable.
    pub trip_count: Option<u64>,
}

impl Loop {
    /// Returns `true` if `b` belongs to the loop. `blocks` is kept sorted
    /// by [`LoopForest::compute`], so this is a binary search.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }
}

/// A recognized basic induction variable `i = phi(init, i + step)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionVar {
    /// The phi destination in the header.
    pub phi: VReg,
    /// Initial value entering the loop.
    pub init: Operand,
    /// Per-iteration step (constant).
    pub step: i64,
    /// The register holding `i + step` (the updated value).
    pub next: VReg,
}

/// The loop-nesting forest of a function.
#[derive(Debug, Clone)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop index per block (None when not in a loop).
    block_loop: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detects all natural loops via back edges in the dominator tree.
    ///
    /// Irreducible edges (branches into a loop body that bypass the header)
    /// do not produce loops; the structurer reports them separately.
    pub fn compute(f: &Function) -> LoopForest {
        let dom = Dominators::compute(f);
        Self::compute_with(f, &dom)
    }

    /// Like [`LoopForest::compute`] with a precomputed dominator tree.
    ///
    /// Loop bodies and exit sets are built over dense bitsets indexed by
    /// block number (the block arena is flat), so membership tests during
    /// the reverse-reachability walk are O(1) instead of list scans.
    pub fn compute_with(f: &Function, dom: &Dominators) -> LoopForest {
        let preds = cfg::predecessors(f);
        let nblocks = f.blocks.len();
        let mut headers: Vec<BlockId> = Vec::new();
        let mut is_header = vec![false; nblocks];
        let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new(); // (latch, header)
        for b in f.block_ids() {
            if !dom.is_reachable(b) {
                continue;
            }
            for s in f.block(b).term.successors() {
                if dom.dominates(s, b) {
                    back_edges.push((b, s));
                    if !is_header[s.index()] {
                        is_header[s.index()] = true;
                        headers.push(s);
                    }
                }
            }
        }
        // Build loop bodies: union of reverse-reachable blocks from each
        // latch without passing the header. Membership bitsets are
        // epoch-stamped with the loop index so one allocation serves all
        // loops; they are retained for the nesting pass below.
        let mut loops: Vec<Loop> = Vec::new();
        let mut in_body: Vec<Vec<bool>> = Vec::with_capacity(headers.len());
        let mut exit_seen = vec![0u32; nblocks];
        for (li, &h) in headers.iter().enumerate() {
            let mut member = vec![false; nblocks];
            member[h.index()] = true;
            let mut body = vec![h];
            let mut latches = Vec::new();
            let mut stack: Vec<BlockId> = Vec::new();
            for &(latch, header) in &back_edges {
                if header != h {
                    continue;
                }
                latches.push(latch);
                if !member[latch.index()] {
                    member[latch.index()] = true;
                    body.push(latch);
                    stack.push(latch);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in &preds[b.index()] {
                    if dom.is_reachable(p) && !member[p.index()] {
                        member[p.index()] = true;
                        body.push(p);
                        stack.push(p);
                    }
                }
            }
            let mut exits = Vec::new();
            let epoch = li as u32 + 1;
            for &b in &body {
                for s in f.block(b).term.successors() {
                    if !member[s.index()] && exit_seen[s.index()] != epoch {
                        exit_seen[s.index()] = epoch;
                        exits.push(s);
                    }
                }
            }
            body.sort();
            latches.sort();
            loops.push(Loop {
                header: h,
                blocks: body,
                latches,
                exits,
                parent: None,
                depth: 1,
                induction: None,
                trip_count: None,
            });
            in_body.push(member);
        }
        // Nesting: loop A is the parent of B if A != B and A contains B's
        // header; the parent is the smallest such container.
        let order: Vec<usize> = {
            let mut idx: Vec<usize> = (0..loops.len()).collect();
            idx.sort_by_key(|&i| loops[i].blocks.len());
            idx
        };
        for &i in &order {
            let header = loops[i].header;
            let mut best: Option<usize> = None;
            for &j in &order {
                if i == j {
                    continue;
                }
                if loops[j].blocks.len() <= loops[i].blocks.len() {
                    continue;
                }
                if in_body[j][header.index()] {
                    best = match best {
                        None => Some(j),
                        Some(b) if loops[j].blocks.len() < loops[b].blocks.len() => Some(j),
                        other => other,
                    };
                }
            }
            loops[i].parent = best;
        }
        for i in 0..loops.len() {
            let mut d = 1;
            let mut p = loops[i].parent;
            while let Some(j) = p {
                d += 1;
                p = loops[j].parent;
            }
            loops[i].depth = d;
        }
        // Innermost loop per block.
        let mut block_loop: Vec<Option<usize>> = vec![None; f.blocks.len()];
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.blocks {
                block_loop[b.index()] = match block_loop[b.index()] {
                    None => Some(i),
                    Some(j) if loops[i].blocks.len() < loops[j].blocks.len() => Some(i),
                    other => other,
                };
            }
        }
        let mut forest = LoopForest { loops, block_loop };
        forest.recover_induction(f);
        forest
    }

    /// All loops (index order is arbitrary but stable).
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// Innermost loop containing `b`.
    pub fn innermost(&self, b: BlockId) -> Option<&Loop> {
        self.block_loop[b.index()].map(|i| &self.loops[i])
    }

    /// Index of the innermost loop containing `b`.
    pub fn innermost_index(&self, b: BlockId) -> Option<usize> {
        self.block_loop[b.index()]
    }

    /// Loop nesting depth of `b` (0 = not in a loop).
    pub fn depth_of(&self, b: BlockId) -> u32 {
        self.innermost(b).map_or(0, |l| l.depth)
    }

    /// Recognizes basic induction variables and constant trip counts.
    ///
    /// Requires SSA form; no-op otherwise. The recognized shape is the one
    /// compilers emit for counted loops: a header phi `i = phi(init, next)`
    /// with `next = i + c` inside the loop, and an exit branch comparing
    /// `i` (or `next`) against a loop-invariant bound.
    fn recover_induction(&mut self, f: &Function) {
        if !f.is_ssa {
            return;
        }
        // Def sites per vreg as (block, op index) — ops are looked up by
        // reference instead of cloning every op in the function.
        let mut def_site: Vec<Option<(BlockId, u32)>> = vec![None; f.vreg_count() as usize];
        for b in f.block_ids() {
            for (k, inst) in f.block(b).ops.iter().enumerate() {
                if let Some(d) = inst.op.dst() {
                    def_site[d.index()] = Some((b, k as u32));
                }
            }
        }
        let def_op = |r: VReg| -> Option<&Op> {
            let (b, k) = def_site.get(r.index()).copied().flatten()?;
            Some(&f.block(b).ops[k as usize].op)
        };
        // Follows Copy/Const chains so "init" and bounds recover literal
        // values even when the lifter materialized them into registers.
        let resolve = |mut o: Operand| -> Operand {
            for _ in 0..8 {
                let Operand::Reg(r) = o else { break };
                match def_op(r) {
                    Some(Op::Const { value, .. }) => return Operand::Const(*value),
                    Some(Op::Copy { src, .. }) => o = *src,
                    _ => break,
                }
            }
            o
        };
        for l in &mut self.loops {
            let header = l.header;
            // Find a phi i = phi(init from outside, next from latch) with
            // next = i + const defined inside the loop.
            for inst in &f.block(header).ops {
                let Op::Phi { dst, args } = &inst.op else {
                    continue;
                };
                if args.len() != 2 {
                    continue;
                }
                let mut init = None;
                let mut next = None;
                for (p, a) in args {
                    if l.contains(*p) {
                        next = a.as_reg();
                    } else {
                        init = Some(resolve(*a));
                    }
                }
                let (Some(init), Some(next_reg)) = (init, next) else {
                    continue;
                };
                let Some(&Op::Bin { op: BinOp::Add, lhs, rhs, .. }) = def_op(next_reg)
                else {
                    continue;
                };
                let step = match (lhs, rhs) {
                    (Operand::Reg(r), Operand::Const(c)) if r == *dst => c,
                    (Operand::Const(c), Operand::Reg(r)) if r == *dst => c,
                    _ => continue,
                };
                if step == 0 {
                    continue;
                }
                l.induction = Some(InductionVar {
                    phi: *dst,
                    init,
                    step,
                    next: next_reg,
                });
                break;
            }
            // Trip count: exit condition in a loop block branching out,
            // comparing the IV against a constant, with constant init.
            let Some(iv) = l.induction else { continue };
            let Some(init_c) = iv.init.as_const() else {
                continue;
            };
            for &b in &l.blocks {
                let Terminator::Branch { cond, t, f: fl } = &f.block(b).term else {
                    continue;
                };
                let exits_loop = !l.contains(*t) || !l.contains(*fl);
                if !exits_loop {
                    continue;
                }
                let Some(cr) = cond.as_reg() else { continue };
                let Some(&Op::Bin { op, lhs, rhs, .. }) = def_op(cr) else {
                    continue;
                };
                // normalize: IV-ish on the left, constant bound on the right
                let (lhs, rhs) = (
                    if lhs.as_reg() == Some(iv.phi) || lhs.as_reg() == Some(iv.next) {
                        lhs
                    } else {
                        resolve(lhs)
                    },
                    if rhs.as_reg() == Some(iv.phi) || rhs.as_reg() == Some(iv.next) {
                        rhs
                    } else {
                        resolve(rhs)
                    },
                );
                let (iv_side, bound, op) = match (lhs, rhs) {
                    (Operand::Reg(r), Operand::Const(c)) => (r, c, op),
                    (Operand::Const(c), Operand::Reg(r)) => {
                        let flipped = match op {
                            BinOp::LtS => BinOp::GtS,
                            BinOp::GtS => BinOp::LtS,
                            BinOp::LeS => BinOp::GeS,
                            BinOp::GeS => BinOp::LeS,
                            other => other,
                        };
                        (r, c, flipped)
                    }
                    _ => continue,
                };
                let uses_next = iv_side == iv.next;
                let uses_phi = iv_side == iv.phi;
                if !uses_next && !uses_phi {
                    continue;
                }
                // Value compared at the branch on iteration k (0-based):
                // phi: init + k*step ; next: init + (k+1)*step
                let base = if uses_next { init_c + iv.step } else { init_c };
                // continue-while-true if the true edge stays in the loop
                let cont_on_true = l.contains(*t);
                let count = trip_count_from(op, cont_on_true, base, iv.step, bound);
                if let Some(c) = count {
                    l.trip_count = Some(c);
                }
                break;
            }
        }
    }
}

/// Solves the number of iterations for `init + k*step  REL  bound`.
fn trip_count_from(op: BinOp, cont_on_true: bool, init: i64, step: i64, bound: i64) -> Option<u64> {
    // Number of k >= 0 such that the continue-condition holds for all
    // 0..k and fails at k; loop executes k+... — we count executed
    // iterations: smallest k where condition fails equals the trip count
    // (condition checked each iteration including the first).
    let holds = |k: i64| -> bool {
        let v = init.wrapping_add(k.wrapping_mul(step)) as i32 as i64;
        let r = op.fold(v, bound) != 0;
        if cont_on_true {
            r
        } else {
            !r
        }
    };
    if !holds(0) {
        return Some(1); // do-while executes once; while-loop bodies guarded by preheader check
    }
    // Closed form for monotone conditions; fall back to bounded scan.
    let mut k: i64 = 0;
    let limit = 1 << 24;
    // exponential + binary search to keep this O(log n)
    let mut hi = 1i64;
    while hi < limit && holds(hi) {
        hi *= 2;
    }
    if hi >= limit {
        return None; // not a simple counted loop
    }
    let mut lo = hi / 2;
    while lo + 1 < hi {
        let mid = (lo + hi) / 2;
        if holds(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    k = k.max(hi);
    Some(k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Inst, Op};
    use crate::ssa;

    /// entry -> header; header -> body|exit; body -> header
    fn while_loop(bound: i64) -> Function {
        let mut f = Function::new("w");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let c = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 0 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LtS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(bound),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return {
            value: Some(Operand::Reg(i)),
        };
        f
    }

    #[test]
    fn detects_single_while_loop() {
        let f = while_loop(10);
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops().len(), 1);
        let l = &forest.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert!(l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)));
        assert_eq!(l.exits, vec![BlockId(3)]);
        assert_eq!(l.depth, 1);
        assert_eq!(forest.depth_of(BlockId(2)), 1);
        assert_eq!(forest.depth_of(BlockId(0)), 0);
    }

    #[test]
    fn induction_and_trip_count_after_ssa() {
        let mut f = while_loop(10);
        ssa::construct(&mut f);
        let forest = LoopForest::compute(&f);
        let l = &forest.loops()[0];
        let iv = l.induction.expect("induction variable recognized");
        assert_eq!(iv.step, 1);
        assert_eq!(iv.init, Operand::Const(0));
        assert_eq!(l.trip_count, Some(10));
    }

    #[test]
    fn nested_loops_have_depths() {
        // outer: header1 {inner: header2 body2} latch1
        let mut f = Function::new("nest");
        let h1 = f.add_block();
        let h2 = f.add_block();
        let b2 = f.add_block();
        let l1 = f.add_block();
        let exit = f.add_block();
        let c = f.new_vreg();
        f.block_mut(f.entry).term = Terminator::Jump(h1);
        f.block_mut(h1).term = Terminator::Jump(h2);
        f.block_mut(h2).push(Op::Const { dst: c, value: 1 });
        f.block_mut(h2).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: b2,
            f: l1,
        };
        f.block_mut(b2).term = Terminator::Jump(h2);
        f.block_mut(l1).push(Op::Const { dst: c, value: 0 });
        f.block_mut(l1).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: h1,
            f: exit,
        };
        f.block_mut(exit).term = Terminator::Return { value: None };
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops().len(), 2);
        let inner = forest.innermost(b2).unwrap();
        assert_eq!(inner.header, h2);
        assert_eq!(inner.depth, 2);
        let outer = forest.innermost(l1).unwrap();
        assert_eq!(outer.header, h1);
        assert_eq!(outer.depth, 1);
    }

    #[test]
    fn trip_count_with_step_and_le() {
        // for (i = 1; i <= 32; i += 2) -> 16 iterations
        let mut f = Function::new("le");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let c = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 1 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LeS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(32),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).ops.push(Inst::new(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(2),
        }));
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return { value: None };
        ssa::construct(&mut f);
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops()[0].trip_count, Some(16));
    }

    #[test]
    fn non_counted_loop_has_no_trip_count() {
        // while (x) with data-dependent x: no induction pattern
        let mut f = Function::new("nc");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let x = f.new_vreg();
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Load {
            dst: x,
            addr: Operand::Const(0x1000),
            width: crate::ir::MemWidth::W,
            signed: false,
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(x),
            t: body,
            f: exit,
        };
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return { value: None };
        ssa::construct(&mut f);
        let forest = LoopForest::compute(&f);
        assert_eq!(forest.loops().len(), 1);
        assert!(forest.loops()[0].trip_count.is_none());
    }
}
