/root/repo/target/debug/deps/binpart_synth-6fd4f9317ea75deb.d: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

/root/repo/target/debug/deps/libbinpart_synth-6fd4f9317ea75deb.rlib: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

/root/repo/target/debug/deps/libbinpart_synth-6fd4f9317ea75deb.rmeta: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

crates/synth/src/lib.rs:
crates/synth/src/schedule.rs:
crates/synth/src/tech.rs:
crates/synth/src/vhdl.rs:
