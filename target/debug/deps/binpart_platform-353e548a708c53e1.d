/root/repo/target/debug/deps/binpart_platform-353e548a708c53e1.d: crates/platform/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_platform-353e548a708c53e1.rmeta: crates/platform/src/lib.rs Cargo.toml

crates/platform/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
