/root/repo/target/release/deps/binpart_par-bea6779db38bd0d0.d: crates/par/src/lib.rs

/root/repo/target/release/deps/libbinpart_par-bea6779db38bd0d0.rlib: crates/par/src/lib.rs

/root/repo/target/release/deps/libbinpart_par-bea6779db38bd0d0.rmeta: crates/par/src/lib.rs

crates/par/src/lib.rs:
