/root/repo/target/debug/examples/quickstart-f15fd61a46561c34.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f15fd61a46561c34.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
