/root/repo/target/debug/deps/binpart-3566900c872df0d8.d: src/lib.rs

/root/repo/target/debug/deps/libbinpart-3566900c872df0d8.rlib: src/lib.rs

/root/repo/target/debug/deps/libbinpart-3566900c872df0d8.rmeta: src/lib.rs

src/lib.rs:
