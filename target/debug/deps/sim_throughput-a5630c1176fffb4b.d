/root/repo/target/debug/deps/sim_throughput-a5630c1176fffb4b.d: crates/bench/benches/sim_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libsim_throughput-a5630c1176fffb4b.rmeta: crates/bench/benches/sim_throughput.rs Cargo.toml

crates/bench/benches/sim_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
