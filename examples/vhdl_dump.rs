//! Dumps the RTL VHDL the behavioral synthesizer emits for the hottest
//! kernel of a benchmark — the artifact the original flow handed to
//! Xilinx ISE.
//!
//! Run with: `cargo run --release --example vhdl_dump`

use binpart::core::flow::{Flow, FlowOptions};
use binpart::minicc::OptLevel;
use binpart::workloads::suite;

fn main() {
    let b = suite().into_iter().find(|b| b.name == "crc").unwrap();
    let binary = b.compile(OptLevel::O1).expect("compiles");
    let report = Flow::new(FlowOptions::default()).run(&binary).expect("flow");
    for k in &report.partition.kernels {
        println!(
            "-- kernel {} : II={}, depth={}, clock {:.0} MHz, {} gates",
            k.name,
            k.synth.timing.innermost_ii,
            k.synth.timing.innermost_depth,
            k.synth.timing.clock_mhz,
            k.synth.area.gate_equivalents
        );
        println!("{}", k.synth.vhdl);
    }
}
