/root/repo/target/debug/deps/binpart_bench-d8976cc1983a48a8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_bench-d8976cc1983a48a8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
