//! Decompilation-based hardware/software partitioning — the primary
//! contribution of Stitt & Vahid's DATE'05 paper, reimplemented as a
//! library.
//!
//! Given a MIPS software [`binpart_mips::Binary`] produced by *any*
//! compiler, the flow:
//!
//! 1. profiles it on the instruction-set simulator,
//! 2. **decompiles** it — binary parsing, CDFG creation, control structure
//!    recovery ([`lift`]), then the decompiler optimizations: constant
//!    propagation (register-move overhead removal), stack operation
//!    removal, operator size reduction, strength promotion, and loop
//!    rerolling ([`opts`]),
//! 3. partitions it with the three-step 90-10 heuristic using profile and
//!    alias information ([`partition`], [`alias`]),
//! 4. synthesizes the selected kernels to RTL VHDL with a Virtex-II area
//!    model (`binpart-synth`), and
//! 5. reports hybrid speedup and energy savings (`binpart-platform`).
//!
//! See [`flow::Flow`] for the one-call entry point.

pub mod alias;
pub mod cosim;
pub mod decompile;
pub mod flow;
pub mod lift;
pub mod opts;
pub mod partition;
pub mod stage;

pub use cosim::{CosimReport, KernelCosim};
pub use decompile::{attach_profile, decompile, DecompileStats, DecompiledProgram};
pub use flow::{Flow, FlowError, FlowOptions, FlowReport};
pub use lift::{DecompileError, DecompileOptions};
pub use opts::PassStats;
pub use partition::{
    harvest_candidates, partition_with_candidates, Candidate, CandidateSet, Partition,
    PartitionOptions, SelectedKernel,
};
pub use stage::{EstimatedProgram, StagedFlow, StagedReport};
