//! Behavioral synthesis for decompiled CDFG regions.
//!
//! The input is a loop nest (or whole function) in SSA form with profile
//! counts and bit-width annotations; the output is a scheduled, bound
//! datapath with an area estimate in Virtex-II gate equivalents, a clock
//! estimate, a cycle count, and RTL VHDL text.
//!
//! Pipeline: DFG extraction → chaining-aware list scheduling
//! ([`schedule::schedule_ops`]) → loop pipelining (`II = max(ResMII,
//! RecMII)`) → binding and area estimation ([`schedule::estimate_area`]) →
//! VHDL emission ([`vhdl::emit_kernel`]).
//!
//! # Example
//!
//! ```
//! use binpart_cdfg::ir::{Function, Op, Operand, Terminator, BinOp};
//! use binpart_synth::{synthesize, SynthesisInput};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = Function::new("double_all");
//! let x = f.new_vreg();
//! let y = f.new_vreg();
//! let entry = f.entry;
//! f.block_mut(entry).push(Op::Load {
//!     dst: x, addr: Operand::Const(0x1000), width: binpart_cdfg::ir::MemWidth::W, signed: false,
//! });
//! f.block_mut(entry).push(Op::Bin {
//!     op: BinOp::Shl, dst: y, lhs: Operand::Reg(x), rhs: Operand::Const(1),
//! });
//! f.block_mut(entry).push(Op::Store {
//!     src: Operand::Reg(y), addr: Operand::Const(0x1000), width: binpart_cdfg::ir::MemWidth::W,
//! });
//! f.block_mut(entry).term = Terminator::Return { value: None };
//! f.block_mut(entry).profile_count = 1;
//! binpart_cdfg::ssa::construct(&mut f);
//! let region: Vec<_> = f.block_ids().collect();
//! let result = synthesize(&SynthesisInput::new(&f, region))?;
//! assert!(result.area.gate_equivalents > 0);
//! assert!(result.vhdl.contains("entity"));
//! # Ok(())
//! # }
//! ```

pub mod estimate;
pub mod schedule;
pub mod tech;
pub mod vhdl;

pub use estimate::{EstimateCache, KernelKey};
pub use schedule::{AreaEstimate, BlockSchedule, KernelTiming, ResourceBudget};
pub use tech::{FuClass, TechLibrary};

use binpart_cdfg::ir::{BlockId, Function, Op};
use binpart_cdfg::loops::LoopForest;
use std::fmt;

/// Synthesis failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// The region contains a call; calls are not synthesizable (the
    /// partitioner only offers call-free regions).
    ContainsCall {
        /// The callee address.
        target: u32,
    },
    /// The region is empty.
    EmptyRegion,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::ContainsCall { target } => {
                write!(f, "region contains a call to {target:#x}")
            }
            SynthError::EmptyRegion => write!(f, "region has no operations"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Input to [`synthesize`].
#[derive(Debug, Clone)]
pub struct SynthesisInput<'f> {
    /// The decompiled function (SSA, profile counts attached).
    pub function: &'f Function,
    /// Blocks of the region to implement in hardware.
    pub region: Vec<BlockId>,
    /// Whether the region's arrays were moved to on-FPGA block RAM
    /// (partitioning step 2). Off means every access pays the external
    /// memory latency.
    pub mem_in_bram: bool,
    /// Bytes of array data to place in block RAM.
    pub bram_bytes: u64,
    /// Resource/clock budget.
    pub budget: ResourceBudget,
    /// Technology library.
    pub library: TechLibrary,
}

impl<'f> SynthesisInput<'f> {
    /// Input with default budget/library, block RAM on, no arrays.
    pub fn new(function: &'f Function, region: Vec<BlockId>) -> SynthesisInput<'f> {
        SynthesisInput {
            function,
            region,
            mem_in_bram: true,
            bram_bytes: 0,
            budget: ResourceBudget::default(),
            library: TechLibrary::virtex2(),
        }
    }
}

/// Result of synthesizing one region.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// Kernel entity name.
    pub name: String,
    /// Timing summary (cycles, II, clock).
    pub timing: KernelTiming,
    /// Area estimate.
    pub area: AreaEstimate,
    /// Emitted RTL.
    pub vhdl: String,
    /// Number of datapath operations synthesized.
    pub op_count: usize,
}

/// Synthesizes a region of `input.function` into hardware.
///
/// # Errors
///
/// Returns [`SynthError::ContainsCall`] if the region calls functions, or
/// [`SynthError::EmptyRegion`] if it has no operations.
pub fn synthesize(input: &SynthesisInput<'_>) -> Result<SynthesisResult, SynthError> {
    let f = input.function;
    let mut all_ops: Vec<&Op> = Vec::new();
    for &b in &input.region {
        for inst in &f.block(b).ops {
            if let Op::Call { target, .. } = inst.op {
                return Err(SynthError::ContainsCall { target });
            }
            all_ops.push(&inst.op);
        }
    }
    if all_ops.is_empty() {
        return Err(SynthError::EmptyRegion);
    }
    let forest = LoopForest::compute(f);
    let timing = schedule::estimate_kernel_cycles(
        f,
        &input.region,
        &forest,
        &input.library,
        &input.budget,
        input.mem_in_bram,
    );
    // Schedule every block for binding + VHDL; the hottest loop iteration
    // drives the emitted FSM.
    let mut block_schedules = Vec::new();
    for &b in &input.region {
        let ops: Vec<&Op> = f.block(b).ops.iter().map(|i| &i.op).collect();
        if ops.is_empty() {
            continue;
        }
        block_schedules.push(schedule::schedule_ops(
            f,
            &ops,
            &input.library,
            &input.budget,
            input.mem_in_bram,
        ));
    }
    let sched_refs: Vec<&BlockSchedule> = block_schedules.iter().collect();
    let states: u32 = block_schedules.iter().map(|s| s.depth).sum::<u32>().max(1);
    let area = schedule::estimate_area(
        f,
        &all_ops,
        &sched_refs,
        &input.library,
        states,
        input.bram_bytes,
    );
    // Emit VHDL for the hottest (largest-profile) block's schedule.
    let hot = input
        .region
        .iter()
        .filter(|&&b| !f.block(b).ops.is_empty())
        .max_by_key(|&&b| f.block(b).profile_count)
        .copied();
    let vhdl = match hot {
        Some(b) => {
            let ops: Vec<&Op> = f.block(b).ops.iter().map(|i| &i.op).collect();
            let sched = schedule::schedule_ops(
                f,
                &ops,
                &input.library,
                &input.budget,
                input.mem_in_bram,
            );
            vhdl::emit_kernel(f, &f.name, &ops, &sched)
        }
        None => String::new(),
    };
    Ok(SynthesisResult {
        name: f.name.clone(),
        timing,
        area,
        vhdl,
        op_count: all_ops.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use binpart_cdfg::ir::{BinOp, MemWidth, Operand, Terminator};
    use binpart_cdfg::ssa;

    /// A counted loop summing an array: the canonical kernel.
    fn sum_kernel(iters: u64) -> Function {
        let mut f = Function::new("sum");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let acc = f.new_vreg();
        let c = f.new_vreg();
        let addr = f.new_vreg();
        let x = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 0 });
        f.block_mut(f.entry).push(Op::Const { dst: acc, value: 0 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LtS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(iters as i64),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Shl,
            dst: addr,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(2),
        });
        f.block_mut(body).push(Op::Load {
            dst: x,
            addr: Operand::Reg(addr),
            width: MemWidth::W,
            signed: false,
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: acc,
            lhs: Operand::Reg(acc),
            rhs: Operand::Reg(x),
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return {
            value: Some(Operand::Reg(acc)),
        };
        ssa::construct(&mut f);
        // attach a profile
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).profile_count = 1;
        }
        let hdr = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .unwrap();
        f.block_mut(hdr).profile_count = iters + 1;
        // body is the branch target inside the loop
        if let Terminator::Branch { t, .. } = f.block(hdr).term {
            f.block_mut(t).profile_count = iters;
        }
        f
    }

    #[test]
    fn synthesizes_sum_kernel_much_faster_than_sw() {
        let f = sum_kernel(1000);
        let region: Vec<BlockId> = f.block_ids().collect();
        let r = synthesize(&SynthesisInput::new(&f, region)).unwrap();
        // Software would be ~6 instrs/iteration = ~6000 cycles; pipelined
        // hardware should be near 1000 * II cycles.
        assert!(
            r.timing.hw_cycles < 3500,
            "hw_cycles {} too slow",
            r.timing.hw_cycles
        );
        assert!(r.timing.innermost_ii <= 2);
        assert!(r.area.gate_equivalents > 500);
        assert!(r.vhdl.contains("entity sum"));
    }

    #[test]
    fn bram_speeds_up_memory_bound_kernels() {
        let f = sum_kernel(1000);
        let region: Vec<BlockId> = f.block_ids().collect();
        let mut input = SynthesisInput::new(&f, region);
        let fast = synthesize(&input).unwrap();
        input.mem_in_bram = false;
        let slow = synthesize(&input).unwrap();
        assert!(
            slow.timing.hw_cycles > fast.timing.hw_cycles,
            "ext {} vs bram {}",
            slow.timing.hw_cycles,
            fast.timing.hw_cycles
        );
    }

    #[test]
    fn call_in_region_is_rejected() {
        let mut f = Function::new("c");
        let d = f.new_vreg();
        f.block_mut(f.entry).push(Op::Call {
            target: 0x40_0000,
            args: vec![],
            dst: Some(d),
        });
        f.block_mut(f.entry).term = Terminator::Return { value: None };
        let region: Vec<BlockId> = f.block_ids().collect();
        let err = synthesize(&SynthesisInput::new(&f, region)).unwrap_err();
        assert!(matches!(err, SynthError::ContainsCall { .. }));
    }

    #[test]
    fn empty_region_is_rejected() {
        let mut f = Function::new("e");
        f.block_mut(f.entry).term = Terminator::Return { value: None };
        let region: Vec<BlockId> = f.block_ids().collect();
        let err = synthesize(&SynthesisInput::new(&f, region)).unwrap_err();
        assert_eq!(err, SynthError::EmptyRegion);
    }

    #[test]
    fn narrower_widths_shrink_area() {
        let mut f = sum_kernel(100);
        let region: Vec<BlockId> = f.block_ids().collect();
        let wide = synthesize(&SynthesisInput::new(&f, region.clone()))
            .unwrap()
            .area
            .gate_equivalents;
        f.vreg_bits = vec![8; f.vreg_count() as usize];
        let narrow = synthesize(&SynthesisInput::new(&f, region))
            .unwrap()
            .area
            .gate_equivalents;
        assert!(narrow < wide, "narrow {narrow} wide {wide}");
    }

    #[test]
    fn bram_bytes_add_area() {
        let f = sum_kernel(100);
        let region: Vec<BlockId> = f.block_ids().collect();
        let mut input = SynthesisInput::new(&f, region);
        let base = synthesize(&input).unwrap().area.gate_equivalents;
        input.bram_bytes = 4096;
        let with = synthesize(&input).unwrap().area.gate_equivalents;
        assert!(with > base);
    }
}
