/root/repo/target/debug/deps/binpart-70be604baa4a0b5b.d: src/lib.rs

/root/repo/target/debug/deps/binpart-70be604baa4a0b5b: src/lib.rs

src/lib.rs:
