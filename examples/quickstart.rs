//! Quickstart: compile a small program, run the decompilation-based
//! partitioning flow, and print the evaluation report.
//!
//! Run with: `cargo run --release --example quickstart`

use binpart::core::flow::{Flow, FlowOptions};
use binpart::minicc::{compile, OptLevel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        int samples[256]; int coefs[16];
        int main(void) {
          int i; int j; int acc; int chk = 0;
          for (i = 0; i < 256; i++) samples[i] = (i * 37 + 11) & 0x3ff;
          for (i = 0; i < 16; i++) coefs[i] = i * 5 - 40;
          for (j = 0; j < 64; j++) {
            acc = 0;
            for (i = 0; i < 16; i++) acc += samples[j * 3 + i] * coefs[i];
            chk += acc >> 8;
          }
          return chk & 0xffff;
        }";
    // Any compiler could have produced this binary; the flow only sees the
    // binary itself.
    let binary = compile(source, OptLevel::O1)?;
    println!(
        "binary: {} instructions, {} bytes of data",
        binary.text.len(),
        binary.data.len()
    );
    let report = Flow::new(FlowOptions::default()).run(&binary)?;
    println!("software cycles:   {}", report.sw_cycles);
    println!("exit value:        {}", report.sw_exit_value);
    println!("app speedup:       {:.2}x", report.hybrid.app_speedup);
    println!(
        "kernel speedup:    {:.1}x (mean)",
        report.hybrid.mean_kernel_speedup()
    );
    println!(
        "energy savings:    {:.0}%",
        report.hybrid.energy_savings * 100.0
    );
    println!("area:              {} gate equivalents", report.hybrid.total_area_gates);
    println!("kernels selected:  {}", report.partition.kernels.len());
    for k in &report.partition.kernels {
        println!(
            "  {} (step {}): {} sw cycles -> {} hw cycles @ {:.0} MHz, {} gates, BRAM={}",
            k.name,
            k.step,
            k.sw_cycles,
            k.synth.timing.hw_cycles,
            k.synth.timing.clock_mhz,
            k.synth.area.gate_equivalents,
            k.mem_in_bram
        );
    }
    Ok(())
}
