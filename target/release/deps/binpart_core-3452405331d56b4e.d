/root/repo/target/release/deps/binpart_core-3452405331d56b4e.d: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

/root/repo/target/release/deps/libbinpart_core-3452405331d56b4e.rlib: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

/root/repo/target/release/deps/libbinpart_core-3452405331d56b4e.rmeta: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

crates/core/src/lib.rs:
crates/core/src/alias.rs:
crates/core/src/decompile.rs:
crates/core/src/flow.rs:
crates/core/src/lift.rs:
crates/core/src/opts.rs:
crates/core/src/partition.rs:
