/root/repo/target/release/deps/rand-1dd8115006bb353b.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-1dd8115006bb353b.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-1dd8115006bb353b.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
