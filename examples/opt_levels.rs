//! The paper's compiler-optimization-level experiment: compile one
//! benchmark at -O0..-O3 and partition each binary, showing that binary-
//! level synthesis keeps working (and usually improves) as the software
//! compiler optimizes harder.
//!
//! Run with: `cargo run --release --example opt_levels`

use binpart::core::flow::{Flow, FlowOptions};
use binpart::minicc::OptLevel;
use binpart::workloads::opt_level_subset;

fn main() {
    for b in opt_level_subset() {
        println!("{} ({}):", b.name, b.suite.label());
        for level in OptLevel::ALL {
            let binary = b.compile(level).expect("compiles");
            let mut options = FlowOptions::default();
            options.decompile.recover_jump_tables = true;
            let r = Flow::new(options).run(&binary).expect("flow");
            println!(
                "  {}: sw {:>8.3} ms -> hybrid {:>7.3} ms, speedup {:>5.2}x, energy {:>3.0}%",
                level.flag(),
                r.hybrid.sw_time_s * 1e3,
                r.hybrid.hybrid_time_s * 1e3,
                r.hybrid.app_speedup,
                r.hybrid.energy_savings * 100.0
            );
        }
    }
}
