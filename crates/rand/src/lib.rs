//! Offline drop-in subset of the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the slice of rand's API the partitioners use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over `Range<usize>`,
//! and [`Rng::gen`] for `f64`/`u32`/`u64`/`bool`. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given seed,
//! which is all the annealing baseline needs (statistical quality is not
//! load-bearing here).

use std::ops::Range;

/// Seedable random generators (subset).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample(rng: &mut impl Rng) -> Self;
}

impl Standard for u64 {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut impl Rng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut impl Rng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Random-value convenience methods (subset).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<usize>) -> usize
    where
        Self: Sized,
    {
        let span = range.end - range.start;
        assert!(span > 0, "cannot sample empty range");
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64
        // per draw, irrelevant for the annealer.
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as usize;
        range.start + hi
    }

    /// Draws a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Random generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream expands the seed into the full state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(3..13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
