/root/repo/target/release/deps/a1_partitioners-2fae637ee309d613.d: crates/bench/benches/a1_partitioners.rs

/root/repo/target/release/deps/a1_partitioners-2fae637ee309d613: crates/bench/benches/a1_partitioners.rs

crates/bench/benches/a1_partitioners.rs:
