/root/repo/target/debug/deps/binpart_core-618c7cc4e9aff21c.d: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

/root/repo/target/debug/deps/libbinpart_core-618c7cc4e9aff21c.rlib: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

/root/repo/target/debug/deps/libbinpart_core-618c7cc4e9aff21c.rmeta: crates/core/src/lib.rs crates/core/src/alias.rs crates/core/src/decompile.rs crates/core/src/flow.rs crates/core/src/lift.rs crates/core/src/opts.rs crates/core/src/partition.rs

crates/core/src/lib.rs:
crates/core/src/alias.rs:
crates/core/src/decompile.rs:
crates/core/src/flow.rs:
crates/core/src/lift.rs:
crates/core/src/opts.rs:
crates/core/src/partition.rs:
