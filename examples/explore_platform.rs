//! Sweeps the hypothetical platform's processor clock (the paper's 40/200/
//! 400 MHz study) plus FPGA area budgets, showing how partitioning
//! decisions shift.
//!
//! Run with: `cargo run --release --example explore_platform`

use binpart::core::flow::{Flow, FlowOptions};
use binpart::minicc::OptLevel;
use binpart::platform::Platform;
use binpart::workloads::suite;

fn main() {
    let b = suite().into_iter().find(|b| b.name == "autcor00").unwrap();
    let binary = b.compile(OptLevel::O1).expect("compiles");
    println!("benchmark: {} ({})\n", b.name, b.suite.label());
    println!("processor clock sweep:");
    for hz in [40e6, 100e6, 200e6, 300e6, 400e6] {
        let options = FlowOptions {
            platform: Platform::mips_virtex2(hz),
            ..Default::default()
        };
        let r = Flow::new(options).run(&binary).expect("flow");
        println!(
            "  {:>4} MHz: speedup {:>6.2}x, energy savings {:>3.0}%",
            hz / 1e6,
            r.hybrid.app_speedup,
            r.hybrid.energy_savings * 100.0
        );
    }
    println!("\nFPGA area budget sweep (200 MHz):");
    for budget in [5_000u64, 15_000, 40_000, 100_000, 250_000] {
        let mut options = FlowOptions::default();
        options.partition.area_budget_gates = budget;
        let r = Flow::new(options).run(&binary).expect("flow");
        println!(
            "  {:>7} gates: {} kernels, speedup {:>6.2}x, used {} gates",
            budget,
            r.partition.kernels.len(),
            r.hybrid.app_speedup,
            r.hybrid.total_area_gates
        );
    }
}
