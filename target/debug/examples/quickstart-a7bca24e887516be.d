/root/repo/target/debug/examples/quickstart-a7bca24e887516be.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-a7bca24e887516be: examples/quickstart.rs

examples/quickstart.rs:
