/root/repo/target/release/deps/e4_decompile-cccd856de67edd00.d: crates/bench/benches/e4_decompile.rs

/root/repo/target/release/deps/e4_decompile-cccd856de67edd00: crates/bench/benches/e4_decompile.rs

crates/bench/benches/e4_decompile.rs:
