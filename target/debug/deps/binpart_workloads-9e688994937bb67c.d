/root/repo/target/debug/deps/binpart_workloads-9e688994937bb67c.d: crates/workloads/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_workloads-9e688994937bb67c.rmeta: crates/workloads/src/lib.rs Cargo.toml

crates/workloads/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
