//! MIPS-I subset instruction-set model, assembler, binary image format, and a
//! cycle-approximate profiling simulator.
//!
//! This crate is the processor substrate for the decompilation-based
//! partitioning flow: the mini-C compiler emits [`Binary`] images of encoded
//! MIPS words, the [`sim::Machine`] executes them (with architecturally
//! correct branch delay slots) collecting a [`sim::Profile`], and the
//! decompiler in `binpart-core` re-parses the same words back into a CDFG.
//!
//! # Example
//!
//! Assemble a tiny program that sums 10..=1 into `$v0`, run it, and inspect
//! the result:
//!
//! ```
//! use binpart_mips::{Asm, Reg, BinaryBuilder, sim::Machine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new();
//! let loop_top = a.new_label();
//! a.li(Reg::T0, 10);           // i = 10
//! a.li(Reg::V0, 0);            // sum = 0
//! a.bind(loop_top);
//! a.addu(Reg::V0, Reg::V0, Reg::T0);
//! a.addiu(Reg::T0, Reg::T0, -1);
//! a.bgtz(Reg::T0, loop_top);
//! a.nop();                     // branch delay slot
//! a.jr(Reg::Ra);
//! a.nop();
//! let text = a.finish()?;
//!
//! let binary = BinaryBuilder::new().text(text).build();
//! let mut m = Machine::new(&binary)?;
//! let exit = m.run()?;
//! assert_eq!(exit.reg(Reg::V0), 55);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod binary;
pub mod hybrid;
pub mod cycles;
pub mod encode;
pub mod instr;
pub mod reference;
pub mod reg;
pub mod sim;
pub mod superblock;

pub use asm::{Asm, AsmError, Label};
pub use binary::{Binary, BinaryBuilder, LoadBinaryError, Symbol, SymbolKind};
pub use cycles::CycleModel;
pub use encode::{decode, encode, DecodeError};
pub use instr::Instr;
pub use reg::Reg;

/// Program counter value that terminates simulation: the loader seeds `$ra`
/// with this address so a `jr $ra` from the entry function halts the machine.
pub const HALT_PC: u32 = 0xffff_0000;

/// Default base address of the text section (mirrors conventional MIPS
/// user-space layout).
pub const DEFAULT_TEXT_BASE: u32 = 0x0040_0000;

/// Default base address of the data section.
pub const DEFAULT_DATA_BASE: u32 = 0x1001_0000;

/// Default initial stack pointer (grows downward).
pub const DEFAULT_STACK_TOP: u32 = 0x7fff_f000;
