/root/repo/target/release/deps/rand-053bff38da81c030.d: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-053bff38da81c030.rlib: crates/rand/src/lib.rs

/root/repo/target/release/deps/librand-053bff38da81c030.rmeta: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
