/root/repo/target/debug/deps/binpart_synth-bf807bfd162192e8.d: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_synth-bf807bfd162192e8.rmeta: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/schedule.rs:
crates/synth/src/tech.rs:
crates/synth/src/vhdl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
