/root/repo/target/release/deps/binpart_platform-3197749437cc7321.d: crates/platform/src/lib.rs

/root/repo/target/release/deps/libbinpart_platform-3197749437cc7321.rlib: crates/platform/src/lib.rs

/root/repo/target/release/deps/libbinpart_platform-3197749437cc7321.rmeta: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
