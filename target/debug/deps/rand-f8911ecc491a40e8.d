/root/repo/target/debug/deps/rand-f8911ecc491a40e8.d: crates/rand/src/lib.rs

/root/repo/target/debug/deps/rand-f8911ecc491a40e8: crates/rand/src/lib.rs

crates/rand/src/lib.rs:
