/root/repo/target/debug/deps/binpart_mips-cc0f1230a931dd2b.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

/root/repo/target/debug/deps/binpart_mips-cc0f1230a931dd2b: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/binary.rs:
crates/mips/src/cycles.rs:
crates/mips/src/encode.rs:
crates/mips/src/instr.rs:
crates/mips/src/reg.rs:
crates/mips/src/sim.rs:
