/root/repo/target/debug/deps/tables-32d86ff448270bc6.d: crates/bench/src/bin/tables.rs Cargo.toml

/root/repo/target/debug/deps/libtables-32d86ff448270bc6.rmeta: crates/bench/src/bin/tables.rs Cargo.toml

crates/bench/src/bin/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
