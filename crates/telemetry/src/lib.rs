//! Zero-cost-when-off observability for the partitioning pipeline.
//!
//! This crate is the instrumentation substrate the rest of the workspace
//! reports through: span-scoped wall-clock timing of the staged flow,
//! cache hit/miss attribution, engine counters (superblock trace cache,
//! hybrid trap-and-swap), sweep progress, and structured
//! [`Diagnostic`](https://docs.rs/binpart-core)-stream emission. It is
//! deliberately dependency-free and sits below every other crate.
//!
//! # The zero-cost contract
//!
//! [`Telemetry`] is a *monomorphized* trait, mirroring how `Profiler`
//! works in `binpart_mips::sim`: instrumented code is generic over
//! `T: Telemetry`, and the default [`NullTelemetry`] instantiation
//! compiles every hook to nothing. The contract has three legs:
//!
//! 1. **No virtual dispatch.** Hooks are monomorphized; `NullTelemetry`'s
//!    bodies are empty `#[inline(always)]` functions the optimizer
//!    deletes.
//! 2. **No argument construction when off.** Anything that costs to
//!    build — formatted detail strings, derived rates — is gated behind
//!    `T::ENABLED` (an associated `const`, so the branch folds away) or
//!    passed lazily via closure ([`SpanGuard::enter`] only invokes its
//!    detail closure when `T::ENABLED`).
//! 3. **No observable behavior change.** Instrumentation never alters
//!    results: the suite-wide differential test asserts bit-identical
//!    `Exit`/`Profile` with telemetry compiled in, and the throughput
//!    smoke gate asserts superblock instrs/s under `NullTelemetry` is
//!    within noise of the pre-instrumentation snapshot.
//!
//! # Event and counter taxonomy
//!
//! **Spans** (wall-clock intervals, nested per thread; names are the
//! stable identifiers the Chrome exporter and golden tests key on):
//!
//! | span          | scope                                                |
//! |---------------|------------------------------------------------------|
//! | `profile`     | one software reference run of a `StagedFlow` stage   |
//! | `decompile`   | CDFG recovery + decompiler optimizations             |
//! | `estimate`    | candidate harvesting + estimate-artifact build       |
//! | `evaluate`    | partitioning + synthesis estimation for one config   |
//! | `cosimulate`  | accelerator packaging + hybrid trap-and-swap cosim   |
//! | `sweep`       | one whole `binpart_explore` grid sweep               |
//! | `hw_invoke`   | one FSMD accelerator invocation (instrumented cosim; |
//! |               | capped per kernel to bound trace size)               |
//!
//! **Counters** ([`Counter`]; monotonic totals, each delta also recorded
//! as a timestamped point for Chrome counter tracks):
//!
//! * `profile_stage_hit/miss`, `decompile_stage_hit/miss`,
//!   `estimate_stage_hit/miss` — `OnceLock` slot attribution in
//!   `StagedFlow` (miss = this call computed the artifact).
//! * `estimate_cache_hit/miss` — the per-kernel `EstimateCache` memo in
//!   `binpart_synth`, attributed per `evaluate` call by delta.
//! * `trace_heat_promotions`, `trace_installs`, `trace_passes`,
//!   `trace_side_exits`, `trace_chain_transfers`, `trace_invalidations`
//!   — superblock trace-cache engine counters.
//! * `hybrid_trap_entries`, `hybrid_store_mismatches` — hybrid machine
//!   kernel-trap entries and store-differential mismatch events.
//! * `sweep_points_ok`, `sweep_points_failed` — sweep progress.
//! * `diagnostics` — per-region degradation records emitted as events.
//! * `hw_invocations`, `hw_bus_reads`, `hw_bus_writes`,
//!   `hw_stall_cycles`, `hw_fill_cycles` — hardware-side totals folded
//!   out of the per-kernel `HwProfile`s after an instrumented
//!   co-simulation (`binpart_hwsim`'s FSMD profiler).
//!
//! **Events** (timestamped instants with a detail string): `diagnostic`
//! (one per `Diagnostic` in a flow report) and `sweep_done`.
//!
//! # Sinks
//!
//! * [`Recorder`] — the in-memory sink; implements [`Telemetry`].
//! * [`TelemetryReport`] ([`Recorder::report`]) — aggregated summary
//!   with a [rendered table](TelemetryReport::render).
//! * [`Recorder::chrome_trace`] — `chrome://tracing` / Perfetto JSON
//!   (complete-span `"X"` events plus `"C"` counter tracks). Unbalanced
//!   span enter/exit is a typed [`TelemetryError`], never a panic.
//! * [`collapse_pc_samples`] — collapsed-stack flamegraph text from a
//!   sampled per-pc histogram keyed by recovered function extents
//!   (pairs with `binpart_mips::sim::SamplingProfiler`).

use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

/// The monomorphized observability hook set.
///
/// Instrumented code takes `T: Telemetry` and calls these on the shared
/// reference it holds; sinks use interior mutability. See the crate docs
/// for the zero-cost contract. Prefer [`SpanGuard::enter`] over raw
/// `span_enter`/`span_exit` pairs — the guard keeps exits balanced on
/// every path and leaves the span open (for post-mortem context) when
/// the thread is unwinding.
pub trait Telemetry: Send + Sync {
    /// Compile-time gate: `false` for [`NullTelemetry`]. Guard any
    /// argument construction that costs something behind this.
    const ENABLED: bool;
    /// A named interval starts on this thread. `detail` is free-form.
    fn span_enter(&self, name: &'static str, detail: &str);
    /// The most recently entered open span on this thread ends; `name`
    /// must match it (a mismatch is recorded as a typed error).
    fn span_exit(&self, name: &'static str);
    /// Add `delta` to a monotonic counter.
    fn counter_add(&self, counter: Counter, delta: u64);
    /// A timestamped instant with a detail string.
    fn event(&self, name: &'static str, detail: &str);
}

/// The do-nothing instantiation: every hook compiles away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTelemetry;

impl Telemetry for NullTelemetry {
    const ENABLED: bool = false;
    #[inline(always)]
    fn span_enter(&self, _name: &'static str, _detail: &str) {}
    #[inline(always)]
    fn span_exit(&self, _name: &'static str) {}
    #[inline(always)]
    fn counter_add(&self, _counter: Counter, _delta: u64) {}
    #[inline(always)]
    fn event(&self, _name: &'static str, _detail: &str) {}
}

/// Shared references forward, so one sink can be threaded through
/// parallel workers (`StagedFlow<'_, &Recorder>` inside a sweep).
impl<T: Telemetry> Telemetry for &T {
    const ENABLED: bool = T::ENABLED;
    #[inline(always)]
    fn span_enter(&self, name: &'static str, detail: &str) {
        (**self).span_enter(name, detail);
    }
    #[inline(always)]
    fn span_exit(&self, name: &'static str) {
        (**self).span_exit(name);
    }
    #[inline(always)]
    fn counter_add(&self, counter: Counter, delta: u64) {
        (**self).counter_add(counter, delta);
    }
    #[inline(always)]
    fn event(&self, name: &'static str, detail: &str) {
        (**self).event(name, detail);
    }
}

/// RAII span: exits on drop, so early returns and `?` stay balanced.
///
/// If the thread is unwinding (a panic is in flight), the drop does
/// *not* exit the span — it stays open in the sink, so a post-mortem
/// [`Recorder::open_span_stack`] shows where the panic happened. The
/// detail closure is only invoked when `T::ENABLED`.
pub struct SpanGuard<'a, T: Telemetry> {
    tel: &'a T,
    name: &'static str,
}

impl<'a, T: Telemetry> SpanGuard<'a, T> {
    /// Enter a span; the returned guard exits it when dropped.
    #[inline]
    pub fn enter(tel: &'a T, name: &'static str, detail: impl FnOnce() -> String) -> Self {
        if T::ENABLED {
            tel.span_enter(name, &detail());
        }
        SpanGuard { tel, name }
    }
}

impl<T: Telemetry> Drop for SpanGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        if T::ENABLED && !std::thread::panicking() {
            self.tel.span_exit(self.name);
        }
    }
}

/// The closed counter taxonomy (crate docs list each counter's meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `StagedFlow::profile` served from its `OnceLock` slot.
    ProfileStageHit,
    /// `StagedFlow::profile` computed the artifact.
    ProfileStageMiss,
    /// `StagedFlow::decompile` served from its slot.
    DecompileStageHit,
    /// `StagedFlow::decompile` computed the artifact.
    DecompileStageMiss,
    /// `StagedFlow::estimate` served from its slot.
    EstimateStageHit,
    /// `StagedFlow::estimate` computed the artifact.
    EstimateStageMiss,
    /// Per-kernel `EstimateCache` memo hits during one `evaluate`.
    EstimateCacheHit,
    /// Per-kernel `EstimateCache` memo misses during one `evaluate`.
    EstimateCacheMiss,
    /// Superblock heat counter crossed the threshold; recording armed.
    TraceHeatPromotions,
    /// A recorded trace was specialized and installed.
    TraceInstalls,
    /// Completed front-to-back passes over installed traces.
    TracePasses,
    /// Early exits out of a trace at a guarded branch.
    TraceSideExits,
    /// Direct trace-to-trace transfers without leaving the cache.
    TraceChainTransfers,
    /// Whole-cache invalidations (dispatch-boundary changes).
    TraceInvalidations,
    /// Hybrid machine kernel-trap entries (accelerator invocations).
    HybridTrapEntries,
    /// Store-differential mismatch events during co-simulation.
    HybridStoreMismatches,
    /// Sweep points that evaluated successfully.
    SweepPointsOk,
    /// Sweep points that returned a flow error.
    SweepPointsFailed,
    /// Per-region degradation `Diagnostic`s emitted.
    Diagnostics,
    /// Hardware accelerator invocations observed by the FSMD profiler.
    HwInvocations,
    /// FSMD bus load transactions (instrumented co-simulation).
    HwBusReads,
    /// FSMD bus store transactions (instrumented co-simulation).
    HwBusWrites,
    /// Measured cycles attributed to memory-bus II stalls.
    HwStallCycles,
    /// Measured cycles attributed to pipeline fill/drain.
    HwFillCycles,
}

impl Counter {
    /// Number of counters in the taxonomy.
    pub const COUNT: usize = 24;

    /// Every counter, in taxonomy order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::ProfileStageHit,
        Counter::ProfileStageMiss,
        Counter::DecompileStageHit,
        Counter::DecompileStageMiss,
        Counter::EstimateStageHit,
        Counter::EstimateStageMiss,
        Counter::EstimateCacheHit,
        Counter::EstimateCacheMiss,
        Counter::TraceHeatPromotions,
        Counter::TraceInstalls,
        Counter::TracePasses,
        Counter::TraceSideExits,
        Counter::TraceChainTransfers,
        Counter::TraceInvalidations,
        Counter::HybridTrapEntries,
        Counter::HybridStoreMismatches,
        Counter::SweepPointsOk,
        Counter::SweepPointsFailed,
        Counter::Diagnostics,
        Counter::HwInvocations,
        Counter::HwBusReads,
        Counter::HwBusWrites,
        Counter::HwStallCycles,
        Counter::HwFillCycles,
    ];

    /// Stable snake-case name (used in reports, Chrome tracks, JSON).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ProfileStageHit => "profile_stage_hit",
            Counter::ProfileStageMiss => "profile_stage_miss",
            Counter::DecompileStageHit => "decompile_stage_hit",
            Counter::DecompileStageMiss => "decompile_stage_miss",
            Counter::EstimateStageHit => "estimate_stage_hit",
            Counter::EstimateStageMiss => "estimate_stage_miss",
            Counter::EstimateCacheHit => "estimate_cache_hit",
            Counter::EstimateCacheMiss => "estimate_cache_miss",
            Counter::TraceHeatPromotions => "trace_heat_promotions",
            Counter::TraceInstalls => "trace_installs",
            Counter::TracePasses => "trace_passes",
            Counter::TraceSideExits => "trace_side_exits",
            Counter::TraceChainTransfers => "trace_chain_transfers",
            Counter::TraceInvalidations => "trace_invalidations",
            Counter::HybridTrapEntries => "hybrid_trap_entries",
            Counter::HybridStoreMismatches => "hybrid_store_mismatches",
            Counter::SweepPointsOk => "sweep_points_ok",
            Counter::SweepPointsFailed => "sweep_points_failed",
            Counter::Diagnostics => "diagnostics",
            Counter::HwInvocations => "hw_invocations",
            Counter::HwBusReads => "hw_bus_reads",
            Counter::HwBusWrites => "hw_bus_writes",
            Counter::HwStallCycles => "hw_stall_cycles",
            Counter::HwFillCycles => "hw_fill_cycles",
        }
    }

    /// Dense index into per-counter arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Typed span-bookkeeping defects. Misuse of the API (an exit with no
/// matching enter, a name mismatch, export while spans are still open)
/// is recorded and surfaced here at export time — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryError {
    /// `span_exit` was called on a thread with no open span.
    ExitWithoutEnter {
        /// The name passed to the orphan exit.
        name: String,
    },
    /// `span_exit(got)` did not match the innermost open span.
    MismatchedExit {
        /// The innermost open span's name.
        expected: String,
        /// The name passed to `span_exit`.
        got: String,
    },
    /// Export was requested while spans were still open.
    UnclosedSpans {
        /// Names of the open spans, outermost first.
        names: Vec<String>,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::ExitWithoutEnter { name } => {
                write!(f, "span_exit(\"{name}\") with no open span on this thread")
            }
            TelemetryError::MismatchedExit { expected, got } => {
                write!(f, "span_exit(\"{got}\") but the innermost open span is \"{expected}\"")
            }
            TelemetryError::UnclosedSpans { names } => {
                write!(f, "export with {} unclosed span(s): {}", names.len(), names.join(", "))
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Cap on timestamped counter points kept for Chrome tracks; totals are
/// always exact, overflow only degrades track resolution.
const SERIES_CAP: usize = 16_384;
/// Cap on retained events; overflow is counted, not silently dropped.
const EVENT_CAP: usize = 4_096;

struct SpanRec {
    name: &'static str,
    detail: String,
    tid: u32,
    start_us: u64,
    dur_us: Option<u64>,
}

struct EventRec {
    name: &'static str,
    detail: String,
    tid: u32,
    ts_us: u64,
}

struct CounterPoint {
    counter: Counter,
    ts_us: u64,
    delta: u64,
    total: u64,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRec>,
    /// Per-thread stacks of indices into `spans` (open spans only).
    open: HashMap<ThreadId, Vec<usize>>,
    /// Dense display ids per OS thread, in first-seen order.
    tids: HashMap<ThreadId, u32>,
    totals: [u64; Counter::COUNT],
    series: Vec<CounterPoint>,
    series_dropped: u64,
    events: Vec<EventRec>,
    events_dropped: u64,
    errors: Vec<TelemetryError>,
}

impl Inner {
    fn tid(&mut self) -> u32 {
        let next = self.tids.len() as u32;
        *self.tids.entry(std::thread::current().id()).or_insert(next)
    }
}

/// The in-memory sink: records spans, counters, and events under a
/// mutex, then aggregates ([`report`](Recorder::report)) or exports
/// ([`chrome_trace`](Recorder::chrome_trace)). Thread-safe; span
/// nesting is tracked per thread.
pub struct Recorder {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A fresh recorder; timestamps are relative to this call.
    pub fn new() -> Recorder {
        Recorder { start: Instant::now(), inner: Mutex::new(Inner::default()) }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding this mutex can only come from allocation
        // failure; poisoned state is still safe to read.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Exact monotonic total for one counter.
    pub fn counter_total(&self, counter: Counter) -> u64 {
        self.lock().totals[counter.index()]
    }

    /// Names of all currently open spans, outermost first, grouped by
    /// thread in first-seen order. After a caught panic this is the
    /// span stack at the point of the panic ([`SpanGuard`] leaves spans
    /// open while unwinding).
    pub fn open_span_stack(&self) -> Vec<String> {
        let inner = self.lock();
        let mut threads: Vec<(&ThreadId, &Vec<usize>)> = inner.open.iter().collect();
        threads.sort_by_key(|(id, _)| inner.tids.get(id).copied().unwrap_or(u32::MAX));
        let mut out = Vec::new();
        for (_, stack) in threads {
            for &i in stack {
                let s = &inner.spans[i];
                if s.detail.is_empty() {
                    out.push(s.name.to_string());
                } else {
                    out.push(format!("{} ({})", s.name, s.detail));
                }
            }
        }
        out
    }

    /// The last `n` counter deltas and events, oldest first, rendered
    /// one per line — the post-mortem context torture attaches to a
    /// violation report.
    pub fn recent_activity(&self, n: usize) -> Vec<String> {
        let inner = self.lock();
        let mut lines: Vec<(u64, String)> = Vec::new();
        for p in inner.series.iter().rev().take(n) {
            lines.push((
                p.ts_us,
                format!("{:>10.3}ms  {} +{} (total {})", p.ts_us as f64 / 1e3, p.counter, p.delta, p.total),
            ));
        }
        for e in inner.events.iter().rev().take(n) {
            lines.push((e.ts_us, format!("{:>10.3}ms  event {}: {}", e.ts_us as f64 / 1e3, e.name, e.detail)));
        }
        lines.sort_by_key(|(ts, _)| *ts);
        let skip = lines.len().saturating_sub(n);
        lines.into_iter().skip(skip).map(|(_, l)| l).collect()
    }

    /// Aggregate everything recorded so far into a summary report.
    /// Open spans are counted at their elapsed-so-far duration.
    pub fn report(&self) -> TelemetryReport {
        let now = self.now_us();
        let inner = self.lock();
        let mut by_name: HashMap<&'static str, SpanSummary> = HashMap::new();
        let mut order: Vec<&'static str> = Vec::new();
        for s in &inner.spans {
            let dur_s = s.dur_us.unwrap_or_else(|| now.saturating_sub(s.start_us)) as f64 / 1e6;
            let e = by_name.entry(s.name).or_insert_with(|| {
                order.push(s.name);
                SpanSummary { name: s.name.to_string(), count: 0, total_s: 0.0, max_s: 0.0 }
            });
            e.count += 1;
            e.total_s += dur_s;
            e.max_s = e.max_s.max(dur_s);
        }
        let spans = order.into_iter().filter_map(|n| by_name.remove(n)).collect();
        let counters = Counter::ALL
            .iter()
            .filter(|c| inner.totals[c.index()] > 0)
            .map(|c| (c.name().to_string(), inner.totals[c.index()]))
            .collect();
        TelemetryReport {
            spans,
            counters,
            events: inner.events.len() as u64 + inner.events_dropped,
            errors: inner.errors.len() as u64,
            wall_s: now as f64 / 1e6,
        }
    }

    /// Export everything as Chrome `chrome://tracing` / Perfetto JSON:
    /// one `"X"` (complete) event per span in enter order, one `"C"`
    /// (counter) track point per recorded delta, one `"i"` (instant)
    /// event per telemetry event.
    ///
    /// Returns the first recorded span-bookkeeping defect, or
    /// [`TelemetryError::UnclosedSpans`] if spans are still open —
    /// never panics.
    pub fn chrome_trace(&self) -> Result<String, TelemetryError> {
        let inner = self.lock();
        if let Some(e) = inner.errors.first() {
            return Err(e.clone());
        }
        let open: Vec<String> =
            inner.open.values().flat_map(|stack| stack.iter().map(|&i| inner.spans[i].name.to_string())).collect();
        if !open.is_empty() {
            return Err(TelemetryError::UnclosedSpans { names: open });
        }
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };
        for s in &inner.spans {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"stage\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"detail\":\"{}\"}}}}",
                escape_json(s.name),
                s.start_us,
                s.dur_us.unwrap_or(0),
                s.tid,
                escape_json(&s.detail),
            ));
        }
        for p in &inner.series {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\"args\":{{\"value\":{}}}}}",
                p.counter, p.ts_us, p.total,
            ));
        }
        for e in &inner.events {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":{},\"pid\":1,\"tid\":{},\"s\":\"t\",\"args\":{{\"detail\":\"{}\"}}}}",
                escape_json(e.name),
                e.ts_us,
                e.tid,
                escape_json(&e.detail),
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        Ok(out)
    }
}

impl Telemetry for Recorder {
    const ENABLED: bool = true;

    fn span_enter(&self, name: &'static str, detail: &str) {
        let ts = self.now_us();
        let mut inner = self.lock();
        let tid = inner.tid();
        let idx = inner.spans.len();
        inner.spans.push(SpanRec { name, detail: detail.to_string(), tid, start_us: ts, dur_us: None });
        inner.open.entry(std::thread::current().id()).or_default().push(idx);
    }

    fn span_exit(&self, name: &'static str) {
        let ts = self.now_us();
        let mut inner = self.lock();
        let stack = inner.open.entry(std::thread::current().id()).or_default();
        match stack.pop() {
            None => inner.errors.push(TelemetryError::ExitWithoutEnter { name: name.to_string() }),
            Some(idx) => {
                let expected = inner.spans[idx].name;
                if expected != name {
                    inner.errors.push(TelemetryError::MismatchedExit {
                        expected: expected.to_string(),
                        got: name.to_string(),
                    });
                }
                let start = inner.spans[idx].start_us;
                inner.spans[idx].dur_us = Some(ts.saturating_sub(start));
            }
        }
    }

    fn counter_add(&self, counter: Counter, delta: u64) {
        if delta == 0 {
            return;
        }
        let ts = self.now_us();
        let mut inner = self.lock();
        inner.totals[counter.index()] += delta;
        let total = inner.totals[counter.index()];
        if inner.series.len() < SERIES_CAP {
            inner.series.push(CounterPoint { counter, ts_us: ts, delta, total });
        } else {
            inner.series_dropped += 1;
        }
    }

    fn event(&self, name: &'static str, detail: &str) {
        let ts = self.now_us();
        let mut inner = self.lock();
        let tid = inner.tid();
        if inner.events.len() < EVENT_CAP {
            inner.events.push(EventRec { name, detail: detail.to_string(), tid, ts_us: ts });
        } else {
            inner.events_dropped += 1;
        }
    }
}

/// Per-span-name aggregate in a [`TelemetryReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Span name.
    pub name: String,
    /// Number of completed (or still-open) instances.
    pub count: u64,
    /// Inclusive wall-clock total across instances, seconds. Nested
    /// child spans are *included* in their parent's total.
    pub total_s: f64,
    /// Longest single instance, seconds.
    pub max_s: f64,
}

/// Aggregated summary of everything a [`Recorder`] captured.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Span aggregates in first-enter order.
    pub spans: Vec<SpanSummary>,
    /// Nonzero counter totals in taxonomy order.
    pub counters: Vec<(String, u64)>,
    /// Events recorded (including any dropped past the retention cap).
    pub events: u64,
    /// Span-bookkeeping defects recorded (see [`TelemetryError`]).
    pub errors: u64,
    /// Recorder wall clock at aggregation time, seconds.
    pub wall_s: f64,
}

impl TelemetryReport {
    /// Inclusive wall total for one span name (0 if never entered).
    pub fn span_total_s(&self, name: &str) -> f64 {
        self.spans.iter().find(|s| s.name == name).map_or(0.0, |s| s.total_s)
    }

    /// Counter total by taxonomy name (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// `hit / (hit + miss)` for a counter pair, `None` when unobserved.
    pub fn hit_rate(&self, hit: Counter, miss: Counter) -> Option<f64> {
        let h = self.counter(hit.name());
        let m = self.counter(miss.name());
        if h + m == 0 {
            None
        } else {
            Some(h as f64 / (h + m) as f64)
        }
    }

    /// Render the aligned summary table (spans, then counters).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("telemetry summary ({:.3} s wall", self.wall_s));
        if self.errors > 0 {
            out.push_str(&format!(", {} span errors", self.errors));
        }
        out.push_str(")\n");
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "  {:<12} {:>8} {:>12} {:>12}\n",
                "span", "count", "total s", "max s"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "  {:<12} {:>8} {:>12.6} {:>12.6}\n",
                    s.name, s.count, s.total_s, s.max_s
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("  {:<26} {:>14}\n", "counter", "total"));
            for (name, v) in &self.counters {
                out.push_str(&format!("  {:<26} {:>14}\n", name, v));
            }
        }
        if self.events > 0 {
            out.push_str(&format!("  {} event(s)\n", self.events));
        }
        out
    }
}

/// Escape a string for inclusion in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate that `s` is one complete JSON value (hand-rolled recursive
/// descent; the workspace vendors no serde). Used by the golden
/// Chrome-trace tests and the `tables telemetry` smoke to prove the
/// exporter's output parses.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    parse_value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > 128 {
        return Err("nesting too deep".to_string());
    }
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at offset {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                parse_value(b, pos, depth + 1)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_lit(b, pos, b"true"),
        Some(b'f') => parse_lit(b, pos, b"false"),
        Some(b'n') => parse_lit(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at offset {pos}", *c as char)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        if b.len() < *pos + 5 || !b[*pos + 1..*pos + 5].iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at offset {pos}"));
                        }
                        *pos += 5;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at offset {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while pos_digit(b, *pos) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at offset {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at offset {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at offset {start}"));
        }
    }
    Ok(())
}

fn pos_digit(b: &[u8], pos: usize) -> bool {
    b.get(pos).is_some_and(u8::is_ascii_digit)
}

/// A recovered function's address extent `[lo, hi)`, for attributing
/// sampled pcs to frames in [`collapse_pc_samples`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncExtent {
    /// Frame name (function symbol).
    pub name: String,
    /// First text address covered, inclusive.
    pub lo: u32,
    /// One past the last text address covered.
    pub hi: u32,
}

/// Collapse a sampled per-pc histogram into flamegraph collapsed-stack
/// text (`root;frame count` lines, hottest first), keyed by recovered
/// function extents. Samples outside every extent fold into a `?`
/// frame. The output feeds any stock flamegraph renderer.
pub fn collapse_pc_samples(root: &str, samples: &[(u32, u64)], extents: &[FuncExtent]) -> String {
    let mut sorted: Vec<&FuncExtent> = extents.iter().filter(|e| e.hi > e.lo).collect();
    sorted.sort_by_key(|e| e.lo);
    let mut per_frame: HashMap<&str, u64> = HashMap::new();
    for &(pc, count) in samples {
        if count == 0 {
            continue;
        }
        let frame = match sorted.binary_search_by(|e| {
            if pc < e.lo {
                std::cmp::Ordering::Greater
            } else if pc >= e.hi {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Equal
            }
        }) {
            Ok(i) => sorted[i].name.as_str(),
            Err(_) => "?",
        };
        *per_frame.entry(frame).or_insert(0) += count;
    }
    let mut rows: Vec<(&str, u64)> = per_frame.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut out = String::new();
    for (frame, count) in rows {
        out.push_str(&format!("{root};{frame} {count}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn null_telemetry_never_builds_details() {
        let called = Cell::new(false);
        let tel = NullTelemetry;
        let _g = SpanGuard::enter(&tel, "profile", || {
            called.set(true);
            String::from("expensive")
        });
        assert!(!called.get(), "detail closure must not run when T::ENABLED is false");
        const { assert!(!NullTelemetry::ENABLED) };
        const { assert!(!<&NullTelemetry as Telemetry>::ENABLED) };
    }

    #[test]
    fn recorder_aggregates_spans_and_counters() {
        let rec = Recorder::new();
        {
            let _outer = SpanGuard::enter(&rec, "sweep", || "4 points".to_string());
            for _ in 0..3 {
                let _inner = SpanGuard::enter(&rec, "evaluate", String::new);
                rec.counter_add(Counter::SweepPointsOk, 1);
            }
            rec.counter_add(Counter::EstimateCacheHit, 7);
            rec.counter_add(Counter::EstimateCacheMiss, 0); // zero deltas are dropped
            rec.event("sweep_done", "4/4");
        }
        let report = rec.report();
        assert_eq!(report.spans[0].name, "sweep");
        assert_eq!(report.spans[1].count, 3);
        assert_eq!(report.counter("sweep_points_ok"), 3);
        assert_eq!(report.counter("estimate_cache_hit"), 7);
        assert_eq!(report.counter("estimate_cache_miss"), 0);
        assert_eq!(report.hit_rate(Counter::EstimateCacheHit, Counter::EstimateCacheMiss), Some(1.0));
        assert_eq!(report.hit_rate(Counter::ProfileStageHit, Counter::ProfileStageMiss), None);
        assert_eq!(report.events, 1);
        assert_eq!(report.errors, 0);
        let table = report.render();
        assert!(table.contains("sweep"), "{table}");
        assert!(table.contains("sweep_points_ok"), "{table}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_counter_tracks() {
        let rec = Recorder::new();
        {
            let _g = SpanGuard::enter(&rec, "profile", || "sb=true \"quoted\"\n".to_string());
            rec.counter_add(Counter::TraceInstalls, 2);
        }
        rec.event("diagnostic", "[synth] k0 fell back");
        let json = rec.chrome_trace().expect("balanced spans export");
        validate_json(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert!(json.contains("\"ph\":\"X\""), "{json}");
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"ph\":\"i\""), "{json}");
        assert!(json.contains("trace_installs"), "{json}");
    }

    #[test]
    fn unbalanced_exits_are_typed_errors_not_panics() {
        let rec = Recorder::new();
        rec.span_exit("profile");
        assert_eq!(
            rec.chrome_trace(),
            Err(TelemetryError::ExitWithoutEnter { name: "profile".to_string() })
        );

        let rec = Recorder::new();
        rec.span_enter("profile", "");
        rec.span_exit("decompile");
        match rec.chrome_trace() {
            Err(TelemetryError::MismatchedExit { expected, got }) => {
                assert_eq!(expected, "profile");
                assert_eq!(got, "decompile");
            }
            other => panic!("expected MismatchedExit, got {other:?}"),
        }

        let rec = Recorder::new();
        rec.span_enter("cosimulate", "");
        match rec.chrome_trace() {
            Err(TelemetryError::UnclosedSpans { names }) => assert_eq!(names, ["cosimulate"]),
            other => panic!("expected UnclosedSpans, got {other:?}"),
        }
        assert_eq!(rec.report().errors, 0);
    }

    #[test]
    fn panicking_guard_leaves_span_open_for_post_mortem() {
        let rec = Recorder::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = SpanGuard::enter(&rec, "cosimulate", || "autcor00 -O2".to_string());
            let _h = SpanGuard::enter(&rec, "evaluate", String::new);
            panic!("mutant violation");
        }));
        assert!(result.is_err());
        let stack = rec.open_span_stack();
        assert_eq!(stack.len(), 2, "{stack:?}");
        assert!(stack[0].starts_with("cosimulate"), "{stack:?}");
        assert!(stack[1].starts_with("evaluate"), "{stack:?}");
    }

    #[test]
    fn recent_activity_orders_counter_deltas_and_events() {
        let rec = Recorder::new();
        rec.counter_add(Counter::HybridTrapEntries, 5);
        rec.event("diagnostic", "k1 rejected");
        rec.counter_add(Counter::HybridStoreMismatches, 1);
        let lines = rec.recent_activity(8);
        assert_eq!(lines.len(), 3, "{lines:?}");
        assert!(lines[0].contains("hybrid_trap_entries +5"), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("event diagnostic")), "{lines:?}");
        assert!(rec.recent_activity(1).len() == 1);
    }

    #[test]
    fn json_validator_accepts_and_rejects() {
        validate_json("{\"a\":[1,2.5,-3e8,\"x\\n\",true,false,null,{}]}").unwrap();
        validate_json("  [\"\\u00e9\"]  ").unwrap();
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("{\"a\":1} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_ok()); // lenient: digits parse greedily
    }

    #[test]
    fn collapse_maps_pcs_through_extents() {
        let extents = vec![
            FuncExtent { name: "main".to_string(), lo: 0x400000, hi: 0x400040 },
            FuncExtent { name: "kernel".to_string(), lo: 0x400040, hi: 0x4000c0 },
        ];
        let samples = vec![(0x400000, 3), (0x400044, 90), (0x4000b8, 10), (0x500000, 2), (0x400010, 0)];
        let text = collapse_pc_samples("autcor00", &samples, &extents);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "autcor00;kernel 100", "{text}");
        assert!(lines.contains(&"autcor00;main 3"), "{text}");
        assert!(lines.contains(&"autcor00;? 2"), "{text}");
    }

    #[test]
    fn counter_taxonomy_is_dense_and_named() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
    }
}
