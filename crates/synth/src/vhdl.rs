//! Register-transfer-level VHDL emission.
//!
//! The original flow handed RTL VHDL to Xilinx ISE; we emit equivalent
//! FSM-plus-datapath VHDL text (entity, state machine, per-step datapath
//! transfers). The area/clock numbers come from this crate's technology
//! model instead of ISE — see DESIGN.md for the substitution note.

use crate::schedule::BlockSchedule;
use binpart_cdfg::ir::{BinOp, Function, Op, Operand, UnOp};
use std::fmt::Write;

/// Emits a VHDL architecture for one scheduled kernel.
///
/// `name` becomes the entity name; `ops`/`schedule` describe one scheduled
/// region (typically the hottest loop body).
pub fn emit_kernel(
    f: &Function,
    name: &str,
    ops: &[&Op],
    schedule: &BlockSchedule,
) -> String {
    let mut v = String::new();
    let entity = sanitize(name);
    let _ = writeln!(v, "library ieee;");
    let _ = writeln!(v, "use ieee.std_logic_1164.all;");
    let _ = writeln!(v, "use ieee.numeric_std.all;");
    let _ = writeln!(v);
    let _ = writeln!(v, "entity {entity} is");
    let _ = writeln!(v, "  port (");
    let _ = writeln!(v, "    clk    : in  std_logic;");
    let _ = writeln!(v, "    rst    : in  std_logic;");
    let _ = writeln!(v, "    start  : in  std_logic;");
    let _ = writeln!(v, "    done   : out std_logic;");
    let _ = writeln!(v, "    mem_addr  : out std_logic_vector(31 downto 0);");
    let _ = writeln!(v, "    mem_wdata : out std_logic_vector(31 downto 0);");
    let _ = writeln!(v, "    mem_rdata : in  std_logic_vector(31 downto 0);");
    let _ = writeln!(v, "    mem_we    : out std_logic");
    let _ = writeln!(v, "  );");
    let _ = writeln!(v, "end entity {entity};");
    let _ = writeln!(v);
    let _ = writeln!(v, "architecture rtl of {entity} is");
    // State type.
    let nstates = schedule.depth.max(1);
    let states: Vec<String> = (0..nstates).map(|s| format!("S{s}")).collect();
    let _ = writeln!(
        v,
        "  type state_t is (IDLE, {}, FINISH);",
        states.join(", ")
    );
    let _ = writeln!(v, "  signal state : state_t := IDLE;");
    // Registers for every produced value.
    for op in ops {
        if let Some(d) = op.dst() {
            let bits = f.bits_of(d).max(1);
            let _ = writeln!(
                v,
                "  signal r{} : std_logic_vector({} downto 0);",
                d.0,
                bits.saturating_sub(1)
            );
        }
    }
    let _ = writeln!(v, "begin");
    let _ = writeln!(v, "  process (clk)");
    let _ = writeln!(v, "  begin");
    let _ = writeln!(v, "    if rising_edge(clk) then");
    let _ = writeln!(v, "      if rst = '1' then");
    let _ = writeln!(v, "        state <= IDLE;");
    let _ = writeln!(v, "        done  <= '0';");
    let _ = writeln!(v, "      else");
    let _ = writeln!(v, "        case state is");
    let _ = writeln!(v, "          when IDLE =>");
    let _ = writeln!(v, "            done <= '0';");
    let _ = writeln!(v, "            if start = '1' then state <= S0; end if;");
    for s in 0..nstates {
        let _ = writeln!(v, "          when S{s} =>");
        for (k, op) in ops.iter().enumerate() {
            if schedule.steps[k] == s {
                for line in op_to_vhdl(f, op) {
                    let _ = writeln!(v, "            {line}");
                }
            }
        }
        if s + 1 < nstates {
            let _ = writeln!(v, "            state <= S{};", s + 1);
        } else {
            let _ = writeln!(v, "            state <= FINISH;");
        }
    }
    let _ = writeln!(v, "          when FINISH =>");
    let _ = writeln!(v, "            done  <= '1';");
    let _ = writeln!(v, "            state <= IDLE;");
    let _ = writeln!(v, "        end case;");
    let _ = writeln!(v, "      end if;");
    let _ = writeln!(v, "    end if;");
    let _ = writeln!(v, "  end process;");
    let _ = writeln!(v, "end architecture rtl;");
    v
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'k');
    }
    s
}

fn operand(o: &Operand) -> String {
    match o {
        Operand::Reg(r) => format!("r{}", r.0),
        Operand::Const(c) => format!("std_logic_vector(to_signed({c}, 32))"),
    }
}

fn op_to_vhdl(f: &Function, op: &Op) -> Vec<String> {
    let _ = f;
    match op {
        Op::Const { dst, value } => vec![format!(
            "r{} <= std_logic_vector(to_signed({value}, 32));",
            dst.0
        )],
        Op::Copy { dst, src } => vec![format!("r{} <= {};", dst.0, operand(src))],
        Op::Un { op, dst, src } => {
            let s = operand(src);
            let expr = match op {
                UnOp::Not => format!("not {s}"),
                UnOp::Neg => format!("std_logic_vector(-signed({s}))"),
                UnOp::SextB => format!("std_logic_vector(resize(signed({s}(7 downto 0)), 32))"),
                UnOp::SextH => format!("std_logic_vector(resize(signed({s}(15 downto 0)), 32))"),
                UnOp::ZextB => format!("std_logic_vector(resize(unsigned({s}(7 downto 0)), 32))"),
                UnOp::ZextH => {
                    format!("std_logic_vector(resize(unsigned({s}(15 downto 0)), 32))")
                }
            };
            vec![format!("r{} <= {expr};", op_dst(opn(dst)))]
        }
        Op::Bin { op, dst, lhs, rhs } => {
            let a = operand(lhs);
            let b = operand(rhs);
            let expr = match op {
                BinOp::Add => format!("std_logic_vector(signed({a}) + signed({b}))"),
                BinOp::Sub => format!("std_logic_vector(signed({a}) - signed({b}))"),
                BinOp::Mul => format!(
                    "std_logic_vector(resize(signed({a}) * signed({b}), 32))"
                ),
                BinOp::MulHiS | BinOp::MulHiU => {
                    format!("mulhi({a}, {b})")
                }
                BinOp::DivS | BinOp::DivU => format!("div_unit({a}, {b})"),
                BinOp::RemS | BinOp::RemU => format!("rem_unit({a}, {b})"),
                BinOp::And => format!("{a} and {b}"),
                BinOp::Or => format!("{a} or {b}"),
                BinOp::Xor => format!("{a} xor {b}"),
                BinOp::Nor => format!("not ({a} or {b})"),
                BinOp::Shl => shift("shift_left", &a, rhs),
                BinOp::ShrL => shift("shift_right", &a, rhs),
                BinOp::ShrA => shift_arith(&a, rhs),
                BinOp::Eq => cmp(&a, &b, "="),
                BinOp::Ne => cmp(&a, &b, "/="),
                BinOp::LtS => cmp_signed(&a, &b, "<"),
                BinOp::LtU => cmp_unsigned(&a, &b, "<"),
                BinOp::LeS => cmp_signed(&a, &b, "<="),
                BinOp::GtS => cmp_signed(&a, &b, ">"),
                BinOp::GeS => cmp_signed(&a, &b, ">="),
            };
            vec![format!("r{} <= {expr};", dst.0)]
        }
        Op::Load { dst, addr, .. } => vec![
            format!("mem_addr <= {};", operand(addr)),
            "mem_we <= '0';".to_string(),
            format!("r{} <= mem_rdata;", dst.0),
        ],
        Op::Store { src, addr, .. } => vec![
            format!("mem_addr <= {};", operand(addr)),
            format!("mem_wdata <= {};", operand(src)),
            "mem_we <= '1';".to_string(),
        ],
        Op::Phi { dst, .. } => vec![format!("-- r{} carried by pipeline register", dst.0)],
        Op::Call { .. } => vec!["-- call (not synthesizable)".to_string()],
    }
}

fn opn(d: &binpart_cdfg::ir::VReg) -> u32 {
    d.0
}

fn op_dst(n: u32) -> u32 {
    n
}

fn shift(f: &str, a: &str, rhs: &Operand) -> String {
    match rhs {
        Operand::Const(c) => format!(
            "std_logic_vector({f}(unsigned({a}), {}))",
            *c & 31
        ),
        Operand::Reg(r) => format!(
            "std_logic_vector({f}(unsigned({a}), to_integer(unsigned(r{}(4 downto 0)))))",
            r.0
        ),
    }
}

fn shift_arith(a: &str, rhs: &Operand) -> String {
    match rhs {
        Operand::Const(c) => format!(
            "std_logic_vector(shift_right(signed({a}), {}))",
            *c & 31
        ),
        Operand::Reg(r) => format!(
            "std_logic_vector(shift_right(signed({a}), to_integer(unsigned(r{}(4 downto 0)))))",
            r.0
        ),
    }
}

fn cmp(a: &str, b: &str, op: &str) -> String {
    format!("(31 downto 1 => '0') & bool_to_sl({a} {op} {b})")
}

fn cmp_signed(a: &str, b: &str, op: &str) -> String {
    format!("(31 downto 1 => '0') & bool_to_sl(signed({a}) {op} signed({b}))")
}

fn cmp_unsigned(a: &str, b: &str, op: &str) -> String {
    format!("(31 downto 1 => '0') & bool_to_sl(unsigned({a}) {op} unsigned({b}))")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{schedule_ops, ResourceBudget};
    use crate::tech::TechLibrary;
    use binpart_cdfg::ir::VReg;

    #[test]
    fn emits_structured_entity() {
        let mut f = Function::new("fir_kernel");
        let a = f.new_vreg();
        let b = f.new_vreg();
        let d = f.new_vreg();
        let e = f.new_vreg();
        let ops = [Op::Bin {
                op: BinOp::Mul,
                dst: d,
                lhs: Operand::Reg(a),
                rhs: Operand::Reg(b),
            },
            Op::Bin {
                op: BinOp::Add,
                dst: e,
                lhs: Operand::Reg(d),
                rhs: Operand::Const(1),
            }];
        let refs: Vec<&Op> = ops.iter().collect();
        let s = schedule_ops(
            &f,
            &refs,
            &TechLibrary::virtex2(),
            &ResourceBudget::default(),
            true,
        );
        let v = emit_kernel(&f, "fir_kernel", &refs, &s);
        assert!(v.contains("entity fir_kernel is"));
        assert!(v.contains("architecture rtl of fir_kernel"));
        assert!(v.contains("when IDLE =>"));
        assert!(v.contains("when FINISH =>"));
        assert!(v.contains(&format!("r{} <=", e.0)));
        assert!(v.contains("signed"));
        // every state present
        for st in 0..s.depth {
            assert!(v.contains(&format!("when S{st} =>")), "missing state {st}");
        }
        let _ = VReg(0);
    }

    #[test]
    fn sanitizes_entity_names() {
        assert_eq!(sanitize("f_0x400040"), "f_0x400040");
        assert_eq!(sanitize("0bad"), "k0bad");
        assert_eq!(sanitize("a-b"), "a_b");
    }
}
