//! Abstract syntax tree for the mini-C language.
//!
//! The language is the integer subset of C that embedded benchmark kernels
//! use: `char/short/int` with unsigned variants, global and local arrays,
//! pointers, functions, the full statement set (`if`, `while`, `do`, `for`,
//! `switch`, `break`, `continue`, `return`), and C's operator zoo including
//! short-circuit logicals, increments, and compound assignment.

use std::fmt;

/// A type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `void` (function returns only).
    Void,
    /// Signed 8-bit.
    Char,
    /// Unsigned 8-bit.
    UChar,
    /// Signed 16-bit.
    Short,
    /// Unsigned 16-bit.
    UShort,
    /// Signed 32-bit.
    Int,
    /// Unsigned 32-bit.
    UInt,
    /// Pointer to element type.
    Ptr(Box<Ty>),
    /// Fixed-size array.
    Array(Box<Ty>, usize),
}

impl Ty {
    /// Size in bytes (pointers are 4).
    pub fn size(&self) -> usize {
        match self {
            Ty::Void => 0,
            Ty::Char | Ty::UChar => 1,
            Ty::Short | Ty::UShort => 2,
            Ty::Int | Ty::UInt | Ty::Ptr(_) => 4,
            Ty::Array(e, n) => e.size() * n,
        }
    }

    /// Natural alignment in bytes.
    pub fn align(&self) -> usize {
        match self {
            Ty::Array(e, _) => e.align(),
            other => other.size().max(1),
        }
    }

    /// `true` for signed integer types.
    pub fn is_signed(&self) -> bool {
        matches!(self, Ty::Char | Ty::Short | Ty::Int)
    }

    /// `true` for any integer type.
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Ty::Char | Ty::UChar | Ty::Short | Ty::UShort | Ty::Int | Ty::UInt
        )
    }

    /// The element type of arrays and pointers.
    pub fn element(&self) -> Option<&Ty> {
        match self {
            Ty::Ptr(e) | Ty::Array(e, _) => Some(e),
            _ => None,
        }
    }

    /// Array-to-pointer decay.
    pub fn decayed(&self) -> Ty {
        match self {
            Ty::Array(e, _) => Ty::Ptr(e.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Char => write!(f, "char"),
            Ty::UChar => write!(f, "unsigned char"),
            Ty::Short => write!(f, "short"),
            Ty::UShort => write!(f, "unsigned short"),
            Ty::Int => write!(f, "int"),
            Ty::UInt => write!(f, "unsigned int"),
            Ty::Ptr(e) => write!(f, "{e}*"),
            Ty::Array(e, n) => write!(f, "{e}[{n}]"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LAnd,
    /// `||` (short-circuit)
    LOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `~`
    Not,
    /// `!`
    LNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Variable reference.
    Ident(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        /// Compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Assignable target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
    },
    /// `base[index]`
    Index {
        /// Array or pointer expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// Function call.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `(ty) expr`
    Cast {
        /// Target type.
        ty: Ty,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `*expr`
    Deref(Box<Expr>),
    /// `&expr`
    AddrOf(Box<Expr>),
    /// `c ? t : e`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when nonzero.
        then: Box<Expr>,
        /// Value when zero.
        els: Box<Expr>,
    },
    /// `++x` / `--x` (`inc` selects which).
    PreInc {
        /// `true` for `++`.
        inc: bool,
        /// Target lvalue.
        expr: Box<Expr>,
    },
    /// `x++` / `x--`.
    PostInc {
        /// `true` for `++`.
        inc: bool,
        /// Target lvalue.
        expr: Box<Expr>,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Local declaration with optional initializer.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Ty,
        /// Initializer.
        init: Option<Expr>,
    },
    /// Expression statement.
    Expr(Expr),
    /// `if`/`else`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Else branch.
        els: Option<Box<Stmt>>,
    },
    /// `while`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Box<Stmt>,
    },
    /// `do { } while (c);`
    DoWhile {
        /// Body.
        body: Box<Stmt>,
        /// Condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`
    For {
        /// Init statement (decl or expression).
        init: Option<Box<Stmt>>,
        /// Condition (absent = infinite).
        cond: Option<Expr>,
        /// Step expression.
        step: Option<Expr>,
        /// Body.
        body: Box<Stmt>,
    },
    /// `switch` with constant case labels.
    Switch {
        /// Scrutinee.
        scrutinee: Expr,
        /// `(label, body)` pairs in source order; bodies do not fall
        /// through (every case is implicitly terminated).
        cases: Vec<(i64, Vec<Stmt>)>,
        /// `default:` body.
        default: Option<Vec<Stmt>>,
    },
    /// `return;` / `return e;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `{ ... }`
    Block(Vec<Stmt>),
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Name.
    pub name: String,
    /// Type (scalar or array).
    pub ty: Ty,
    /// Flattened initializer values (missing entries are zero).
    pub init: Vec<i64>,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDecl {
    /// Name.
    pub name: String,
    /// Return type.
    pub ret: Ty,
    /// Parameters (max 4 by the o32-subset convention used here).
    pub params: Vec<(String, Ty)>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole translation unit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Globals in declaration order.
    pub globals: Vec<GlobalDecl>,
    /// Functions in declaration order.
    pub funcs: Vec<FuncDecl>,
}

impl Program {
    /// Finds a function by name.
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.iter().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalDecl> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes_and_alignment() {
        assert_eq!(Ty::Char.size(), 1);
        assert_eq!(Ty::UShort.size(), 2);
        assert_eq!(Ty::Int.size(), 4);
        assert_eq!(Ty::Ptr(Box::new(Ty::Char)).size(), 4);
        let arr = Ty::Array(Box::new(Ty::Short), 10);
        assert_eq!(arr.size(), 20);
        assert_eq!(arr.align(), 2);
        assert_eq!(arr.decayed(), Ty::Ptr(Box::new(Ty::Short)));
    }

    #[test]
    fn signedness() {
        assert!(Ty::Char.is_signed());
        assert!(!Ty::UChar.is_signed());
        assert!(Ty::Int.is_integer());
        assert!(!Ty::Ptr(Box::new(Ty::Int)).is_integer());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Ty::UInt.to_string(), "unsigned int");
        assert_eq!(Ty::Ptr(Box::new(Ty::Int)).to_string(), "int*");
        assert_eq!(Ty::Array(Box::new(Ty::Char), 3).to_string(), "char[3]");
    }
}
