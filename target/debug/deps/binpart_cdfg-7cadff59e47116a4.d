/root/repo/target/debug/deps/binpart_cdfg-7cadff59e47116a4.d: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

/root/repo/target/debug/deps/libbinpart_cdfg-7cadff59e47116a4.rlib: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

/root/repo/target/debug/deps/libbinpart_cdfg-7cadff59e47116a4.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

crates/cdfg/src/lib.rs:
crates/cdfg/src/cfg.rs:
crates/cdfg/src/dataflow.rs:
crates/cdfg/src/dom.rs:
crates/cdfg/src/ir.rs:
crates/cdfg/src/loops.rs:
crates/cdfg/src/ssa.rs:
crates/cdfg/src/structure.rs:
