//! The MIPS-I subset instruction enumeration and its textual form.

use crate::Reg;
use std::fmt;

/// A decoded MIPS-I instruction.
///
/// The subset covers everything `binpart-minicc` emits and everything the
/// decompiler understands: integer ALU, shifts, multiply/divide with HI/LO,
/// loads/stores of byte/half/word, branches, jumps, and `break`.
///
/// Branch `offset` fields are in **instructions** (words) relative to the
/// instruction *after* the branch, exactly as encoded in the machine word.
/// Jump `target` fields hold the 26-bit instruction index field.
///
/// # Example
///
/// ```
/// use binpart_mips::{Instr, Reg, encode, decode};
/// let i = Instr::Addiu { rt: Reg::T0, rs: Reg::Sp, imm: -8 };
/// assert_eq!(decode(encode(i)).unwrap(), i);
/// assert_eq!(i.to_string(), "addiu $t0, $sp, -8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    // ---- R-type ALU ----
    /// `add rd, rs, rt` (trapping add; treated as `addu` by the simulator).
    Add { rd: Reg, rs: Reg, rt: Reg },
    /// `addu rd, rs, rt`
    Addu { rd: Reg, rs: Reg, rt: Reg },
    /// `sub rd, rs, rt` (trapping; treated as `subu`).
    Sub { rd: Reg, rs: Reg, rt: Reg },
    /// `subu rd, rs, rt`
    Subu { rd: Reg, rs: Reg, rt: Reg },
    /// `and rd, rs, rt`
    And { rd: Reg, rs: Reg, rt: Reg },
    /// `or rd, rs, rt`
    Or { rd: Reg, rs: Reg, rt: Reg },
    /// `xor rd, rs, rt`
    Xor { rd: Reg, rs: Reg, rt: Reg },
    /// `nor rd, rs, rt`
    Nor { rd: Reg, rs: Reg, rt: Reg },
    /// `slt rd, rs, rt` — set on signed less-than.
    Slt { rd: Reg, rs: Reg, rt: Reg },
    /// `sltu rd, rs, rt` — set on unsigned less-than.
    Sltu { rd: Reg, rs: Reg, rt: Reg },

    // ---- shifts ----
    /// `sll rd, rt, shamt` (`sll $zero,$zero,0` is the canonical `nop`).
    Sll { rd: Reg, rt: Reg, shamt: u8 },
    /// `srl rd, rt, shamt`
    Srl { rd: Reg, rt: Reg, shamt: u8 },
    /// `sra rd, rt, shamt`
    Sra { rd: Reg, rt: Reg, shamt: u8 },
    /// `sllv rd, rt, rs`
    Sllv { rd: Reg, rt: Reg, rs: Reg },
    /// `srlv rd, rt, rs`
    Srlv { rd: Reg, rt: Reg, rs: Reg },
    /// `srav rd, rt, rs`
    Srav { rd: Reg, rt: Reg, rs: Reg },

    // ---- multiply / divide ----
    /// `mult rs, rt` — signed 32x32→64 into HI/LO.
    Mult { rs: Reg, rt: Reg },
    /// `multu rs, rt`
    Multu { rs: Reg, rt: Reg },
    /// `div rs, rt` — signed divide, quotient LO, remainder HI.
    Div { rs: Reg, rt: Reg },
    /// `divu rs, rt`
    Divu { rs: Reg, rt: Reg },
    /// `mfhi rd`
    Mfhi { rd: Reg },
    /// `mflo rd`
    Mflo { rd: Reg },
    /// `mthi rs`
    Mthi { rs: Reg },
    /// `mtlo rs`
    Mtlo { rs: Reg },

    // ---- I-type ALU ----
    /// `addi rt, rs, imm` (trapping; treated as `addiu`).
    Addi { rt: Reg, rs: Reg, imm: i16 },
    /// `addiu rt, rs, imm`
    Addiu { rt: Reg, rs: Reg, imm: i16 },
    /// `slti rt, rs, imm`
    Slti { rt: Reg, rs: Reg, imm: i16 },
    /// `sltiu rt, rs, imm` — immediate sign-extended then compared unsigned.
    Sltiu { rt: Reg, rs: Reg, imm: i16 },
    /// `andi rt, rs, imm` — immediate zero-extended.
    Andi { rt: Reg, rs: Reg, imm: u16 },
    /// `ori rt, rs, imm`
    Ori { rt: Reg, rs: Reg, imm: u16 },
    /// `xori rt, rs, imm`
    Xori { rt: Reg, rs: Reg, imm: u16 },
    /// `lui rt, imm`
    Lui { rt: Reg, imm: u16 },

    // ---- loads / stores ----
    /// `lb rt, offset(base)`
    Lb { rt: Reg, base: Reg, offset: i16 },
    /// `lbu rt, offset(base)`
    Lbu { rt: Reg, base: Reg, offset: i16 },
    /// `lh rt, offset(base)`
    Lh { rt: Reg, base: Reg, offset: i16 },
    /// `lhu rt, offset(base)`
    Lhu { rt: Reg, base: Reg, offset: i16 },
    /// `lw rt, offset(base)`
    Lw { rt: Reg, base: Reg, offset: i16 },
    /// `sb rt, offset(base)`
    Sb { rt: Reg, base: Reg, offset: i16 },
    /// `sh rt, offset(base)`
    Sh { rt: Reg, base: Reg, offset: i16 },
    /// `sw rt, offset(base)`
    Sw { rt: Reg, base: Reg, offset: i16 },

    // ---- branches (offset in words from the delay slot) ----
    /// `beq rs, rt, offset`
    Beq { rs: Reg, rt: Reg, offset: i16 },
    /// `bne rs, rt, offset`
    Bne { rs: Reg, rt: Reg, offset: i16 },
    /// `blez rs, offset`
    Blez { rs: Reg, offset: i16 },
    /// `bgtz rs, offset`
    Bgtz { rs: Reg, offset: i16 },
    /// `bltz rs, offset`
    Bltz { rs: Reg, offset: i16 },
    /// `bgez rs, offset`
    Bgez { rs: Reg, offset: i16 },

    // ---- jumps ----
    /// `j target` — 26-bit instruction-index field.
    J { target: u32 },
    /// `jal target`
    Jal { target: u32 },
    /// `jr rs`
    Jr { rs: Reg },
    /// `jalr rd, rs`
    Jalr { rd: Reg, rs: Reg },

    // ---- system ----
    /// `break code` — halts the simulator with `code`.
    Break { code: u32 },
}

impl Instr {
    /// The canonical no-op, `sll $zero, $zero, 0`.
    pub const NOP: Instr = Instr::Sll {
        rd: Reg::Zero,
        rt: Reg::Zero,
        shamt: 0,
    };

    /// Returns `true` if this is the canonical `nop` encoding.
    pub fn is_nop(self) -> bool {
        self == Instr::NOP
    }

    /// Returns `true` for conditional branches (not jumps).
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Instr::Beq { .. }
                | Instr::Bne { .. }
                | Instr::Blez { .. }
                | Instr::Bgtz { .. }
                | Instr::Bltz { .. }
                | Instr::Bgez { .. }
        )
    }

    /// Returns `true` for any control transfer (branch, jump, call, return).
    pub fn is_control(self) -> bool {
        self.is_branch()
            || matches!(
                self,
                Instr::J { .. }
                    | Instr::Jal { .. }
                    | Instr::Jr { .. }
                    | Instr::Jalr { .. }
                    | Instr::Break { .. }
            )
    }

    /// For a branch at address `pc`, the absolute target address.
    ///
    /// Returns `None` for non-branch instructions.
    pub fn branch_target(self, pc: u32) -> Option<u32> {
        let off = match self {
            Instr::Beq { offset, .. }
            | Instr::Bne { offset, .. }
            | Instr::Blez { offset, .. }
            | Instr::Bgtz { offset, .. }
            | Instr::Bltz { offset, .. }
            | Instr::Bgez { offset, .. } => offset,
            _ => return None,
        };
        Some(pc.wrapping_add(4).wrapping_add((off as i32 as u32) << 2))
    }

    /// For `j`/`jal` at address `pc`, the absolute target address.
    pub fn jump_target(self, pc: u32) -> Option<u32> {
        match self {
            Instr::J { target } | Instr::Jal { target } => {
                Some((pc.wrapping_add(4) & 0xf000_0000) | (target << 2))
            }
            _ => None,
        }
    }

    /// The register written by this instruction, if any.
    pub fn def(self) -> Option<Reg> {
        use Instr::*;
        let r = match self {
            Add { rd, .. } | Addu { rd, .. } | Sub { rd, .. } | Subu { rd, .. }
            | And { rd, .. } | Or { rd, .. } | Xor { rd, .. } | Nor { rd, .. }
            | Slt { rd, .. } | Sltu { rd, .. } | Sll { rd, .. } | Srl { rd, .. }
            | Sra { rd, .. } | Sllv { rd, .. } | Srlv { rd, .. } | Srav { rd, .. }
            | Mfhi { rd } | Mflo { rd } | Jalr { rd, .. } => rd,
            Addi { rt, .. } | Addiu { rt, .. } | Slti { rt, .. } | Sltiu { rt, .. }
            | Andi { rt, .. } | Ori { rt, .. } | Xori { rt, .. } | Lui { rt, .. }
            | Lb { rt, .. } | Lbu { rt, .. } | Lh { rt, .. } | Lhu { rt, .. }
            | Lw { rt, .. } => rt,
            Jal { .. } => Reg::Ra,
            _ => return None,
        };
        if r == Reg::Zero {
            None
        } else {
            Some(r)
        }
    }

    /// The registers read by this instruction (up to two).
    pub fn uses(self) -> Vec<Reg> {
        use Instr::*;
        let v: Vec<Reg> = match self {
            Add { rs, rt, .. } | Addu { rs, rt, .. } | Sub { rs, rt, .. }
            | Subu { rs, rt, .. } | And { rs, rt, .. } | Or { rs, rt, .. }
            | Xor { rs, rt, .. } | Nor { rs, rt, .. } | Slt { rs, rt, .. }
            | Sltu { rs, rt, .. } | Mult { rs, rt } | Multu { rs, rt } | Div { rs, rt }
            | Divu { rs, rt } | Beq { rs, rt, .. } | Bne { rs, rt, .. } => vec![rs, rt],
            Sllv { rt, rs, .. } | Srlv { rt, rs, .. } | Srav { rt, rs, .. } => vec![rt, rs],
            Sll { rt, .. } | Srl { rt, .. } | Sra { rt, .. } => vec![rt],
            Addi { rs, .. } | Addiu { rs, .. } | Slti { rs, .. } | Sltiu { rs, .. }
            | Andi { rs, .. } | Ori { rs, .. } | Xori { rs, .. } | Blez { rs, .. }
            | Bgtz { rs, .. } | Bltz { rs, .. } | Bgez { rs, .. } | Jr { rs }
            | Jalr { rs, .. } | Mthi { rs } | Mtlo { rs } => vec![rs],
            Lb { base, .. } | Lbu { base, .. } | Lh { base, .. } | Lhu { base, .. }
            | Lw { base, .. } => vec![base],
            Sb { rt, base, .. } | Sh { rt, base, .. } | Sw { rt, base, .. } => vec![rt, base],
            Lui { .. } | J { .. } | Jal { .. } | Mfhi { .. } | Mflo { .. } | Break { .. } => {
                vec![]
            }
        };
        v.into_iter().filter(|&r| r != Reg::Zero).collect()
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instr::*;
        match *self {
            i if i.is_nop() => write!(f, "nop"),
            Add { rd, rs, rt } => write!(f, "add {rd}, {rs}, {rt}"),
            Addu { rd, rs, rt } => write!(f, "addu {rd}, {rs}, {rt}"),
            Sub { rd, rs, rt } => write!(f, "sub {rd}, {rs}, {rt}"),
            Subu { rd, rs, rt } => write!(f, "subu {rd}, {rs}, {rt}"),
            And { rd, rs, rt } => write!(f, "and {rd}, {rs}, {rt}"),
            Or { rd, rs, rt } => write!(f, "or {rd}, {rs}, {rt}"),
            Xor { rd, rs, rt } => write!(f, "xor {rd}, {rs}, {rt}"),
            Nor { rd, rs, rt } => write!(f, "nor {rd}, {rs}, {rt}"),
            Slt { rd, rs, rt } => write!(f, "slt {rd}, {rs}, {rt}"),
            Sltu { rd, rs, rt } => write!(f, "sltu {rd}, {rs}, {rt}"),
            Sll { rd, rt, shamt } => write!(f, "sll {rd}, {rt}, {shamt}"),
            Srl { rd, rt, shamt } => write!(f, "srl {rd}, {rt}, {shamt}"),
            Sra { rd, rt, shamt } => write!(f, "sra {rd}, {rt}, {shamt}"),
            Sllv { rd, rt, rs } => write!(f, "sllv {rd}, {rt}, {rs}"),
            Srlv { rd, rt, rs } => write!(f, "srlv {rd}, {rt}, {rs}"),
            Srav { rd, rt, rs } => write!(f, "srav {rd}, {rt}, {rs}"),
            Mult { rs, rt } => write!(f, "mult {rs}, {rt}"),
            Multu { rs, rt } => write!(f, "multu {rs}, {rt}"),
            Div { rs, rt } => write!(f, "div {rs}, {rt}"),
            Divu { rs, rt } => write!(f, "divu {rs}, {rt}"),
            Mfhi { rd } => write!(f, "mfhi {rd}"),
            Mflo { rd } => write!(f, "mflo {rd}"),
            Mthi { rs } => write!(f, "mthi {rs}"),
            Mtlo { rs } => write!(f, "mtlo {rs}"),
            Addi { rt, rs, imm } => write!(f, "addi {rt}, {rs}, {imm}"),
            Addiu { rt, rs, imm } => write!(f, "addiu {rt}, {rs}, {imm}"),
            Slti { rt, rs, imm } => write!(f, "slti {rt}, {rs}, {imm}"),
            Sltiu { rt, rs, imm } => write!(f, "sltiu {rt}, {rs}, {imm}"),
            Andi { rt, rs, imm } => write!(f, "andi {rt}, {rs}, {imm:#x}"),
            Ori { rt, rs, imm } => write!(f, "ori {rt}, {rs}, {imm:#x}"),
            Xori { rt, rs, imm } => write!(f, "xori {rt}, {rs}, {imm:#x}"),
            Lui { rt, imm } => write!(f, "lui {rt}, {imm:#x}"),
            Lb { rt, base, offset } => write!(f, "lb {rt}, {offset}({base})"),
            Lbu { rt, base, offset } => write!(f, "lbu {rt}, {offset}({base})"),
            Lh { rt, base, offset } => write!(f, "lh {rt}, {offset}({base})"),
            Lhu { rt, base, offset } => write!(f, "lhu {rt}, {offset}({base})"),
            Lw { rt, base, offset } => write!(f, "lw {rt}, {offset}({base})"),
            Sb { rt, base, offset } => write!(f, "sb {rt}, {offset}({base})"),
            Sh { rt, base, offset } => write!(f, "sh {rt}, {offset}({base})"),
            Sw { rt, base, offset } => write!(f, "sw {rt}, {offset}({base})"),
            Beq { rs, rt, offset } => write!(f, "beq {rs}, {rt}, {offset}"),
            Bne { rs, rt, offset } => write!(f, "bne {rs}, {rt}, {offset}"),
            Blez { rs, offset } => write!(f, "blez {rs}, {offset}"),
            Bgtz { rs, offset } => write!(f, "bgtz {rs}, {offset}"),
            Bltz { rs, offset } => write!(f, "bltz {rs}, {offset}"),
            Bgez { rs, offset } => write!(f, "bgez {rs}, {offset}"),
            J { target } => write!(f, "j {:#x}", target << 2),
            Jal { target } => write!(f, "jal {:#x}", target << 2),
            Jr { rs } => write!(f, "jr {rs}"),
            Jalr { rd, rs } => write!(f, "jalr {rd}, {rs}"),
            Break { code } => write!(f, "break {code}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_is_sll_zero() {
        assert!(Instr::NOP.is_nop());
        assert!(!Instr::Sll {
            rd: Reg::T0,
            rt: Reg::Zero,
            shamt: 0
        }
        .is_nop());
        assert_eq!(Instr::NOP.to_string(), "nop");
    }

    #[test]
    fn branch_target_arithmetic() {
        let b = Instr::Beq {
            rs: Reg::T0,
            rt: Reg::Zero,
            offset: -2,
        };
        // pc+4 + (-2<<2) = pc - 4
        assert_eq!(b.branch_target(0x0040_0010), Some(0x0040_000c));
        let fwd = Instr::Bne {
            rs: Reg::T0,
            rt: Reg::T1,
            offset: 3,
        };
        assert_eq!(fwd.branch_target(0x0040_0000), Some(0x0040_0010));
    }

    #[test]
    fn jump_target_uses_region_bits() {
        let j = Instr::J {
            target: 0x0040_0040 >> 2,
        };
        assert_eq!(j.jump_target(0x0040_0000), Some(0x0040_0040));
    }

    #[test]
    fn defs_and_uses_ignore_zero() {
        let i = Instr::Addu {
            rd: Reg::Zero,
            rs: Reg::T0,
            rt: Reg::Zero,
        };
        assert_eq!(i.def(), None);
        assert_eq!(i.uses(), vec![Reg::T0]);
        let jal = Instr::Jal { target: 0 };
        assert_eq!(jal.def(), Some(Reg::Ra));
        let sw = Instr::Sw {
            rt: Reg::T1,
            base: Reg::Sp,
            offset: 4,
        };
        assert_eq!(sw.def(), None);
        assert_eq!(sw.uses(), vec![Reg::T1, Reg::Sp]);
    }

    #[test]
    fn control_classification() {
        assert!(Instr::J { target: 0 }.is_control());
        assert!(Instr::Jr { rs: Reg::Ra }.is_control());
        assert!(Instr::Beq {
            rs: Reg::T0,
            rt: Reg::T1,
            offset: 0
        }
        .is_branch());
        assert!(!Instr::NOP.is_control());
        assert!(!Instr::Lw {
            rt: Reg::T0,
            base: Reg::Sp,
            offset: 0
        }
        .is_control());
    }
}
