//! Binary encoding and decoding of the MIPS-I subset.
//!
//! Encodings follow the real MIPS32 formats (R/I/J-type), so text sections
//! produced here are genuine machine code for the covered subset.

use crate::{Instr, Reg};
use std::fmt;

/// Error returned by [`decode`] for machine words outside the supported
/// subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported machine word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const fn r(op: u32, rs: Reg, rt: Reg, rd: Reg, shamt: u32, funct: u32) -> u32 {
    (op << 26)
        | ((rs as u32) << 21)
        | ((rt as u32) << 16)
        | ((rd as u32) << 11)
        | (shamt << 6)
        | funct
}

const fn i(op: u32, rs: Reg, rt: Reg, imm: u16) -> u32 {
    (op << 26) | ((rs as u32) << 21) | ((rt as u32) << 16) | imm as u32
}

/// Encodes an instruction into its 32-bit machine word.
///
/// # Example
///
/// ```
/// use binpart_mips::{encode, Instr};
/// assert_eq!(encode(Instr::NOP), 0);
/// ```
pub fn encode(instr: Instr) -> u32 {
    use Instr::*;
    const Z: Reg = Reg::Zero;
    match instr {
        Add { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x20),
        Addu { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x21),
        Sub { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x22),
        Subu { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x23),
        And { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x24),
        Or { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x25),
        Xor { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x26),
        Nor { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x27),
        Slt { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x2a),
        Sltu { rd, rs, rt } => r(0, rs, rt, rd, 0, 0x2b),
        Sll { rd, rt, shamt } => r(0, Z, rt, rd, shamt as u32 & 0x1f, 0x00),
        Srl { rd, rt, shamt } => r(0, Z, rt, rd, shamt as u32 & 0x1f, 0x02),
        Sra { rd, rt, shamt } => r(0, Z, rt, rd, shamt as u32 & 0x1f, 0x03),
        Sllv { rd, rt, rs } => r(0, rs, rt, rd, 0, 0x04),
        Srlv { rd, rt, rs } => r(0, rs, rt, rd, 0, 0x06),
        Srav { rd, rt, rs } => r(0, rs, rt, rd, 0, 0x07),
        Mult { rs, rt } => r(0, rs, rt, Z, 0, 0x18),
        Multu { rs, rt } => r(0, rs, rt, Z, 0, 0x19),
        Div { rs, rt } => r(0, rs, rt, Z, 0, 0x1a),
        Divu { rs, rt } => r(0, rs, rt, Z, 0, 0x1b),
        Mfhi { rd } => r(0, Z, Z, rd, 0, 0x10),
        Mflo { rd } => r(0, Z, Z, rd, 0, 0x12),
        Mthi { rs } => r(0, rs, Z, Z, 0, 0x11),
        Mtlo { rs } => r(0, rs, Z, Z, 0, 0x13),
        Jr { rs } => r(0, rs, Z, Z, 0, 0x08),
        Jalr { rd, rs } => r(0, rs, Z, rd, 0, 0x09),
        Break { code } => ((code & 0xf_ffff) << 6) | 0x0d,
        Addi { rt, rs, imm } => i(0x08, rs, rt, imm as u16),
        Addiu { rt, rs, imm } => i(0x09, rs, rt, imm as u16),
        Slti { rt, rs, imm } => i(0x0a, rs, rt, imm as u16),
        Sltiu { rt, rs, imm } => i(0x0b, rs, rt, imm as u16),
        Andi { rt, rs, imm } => i(0x0c, rs, rt, imm),
        Ori { rt, rs, imm } => i(0x0d, rs, rt, imm),
        Xori { rt, rs, imm } => i(0x0e, rs, rt, imm),
        Lui { rt, imm } => i(0x0f, Z, rt, imm),
        Lb { rt, base, offset } => i(0x20, base, rt, offset as u16),
        Lh { rt, base, offset } => i(0x21, base, rt, offset as u16),
        Lw { rt, base, offset } => i(0x23, base, rt, offset as u16),
        Lbu { rt, base, offset } => i(0x24, base, rt, offset as u16),
        Lhu { rt, base, offset } => i(0x25, base, rt, offset as u16),
        Sb { rt, base, offset } => i(0x28, base, rt, offset as u16),
        Sh { rt, base, offset } => i(0x29, base, rt, offset as u16),
        Sw { rt, base, offset } => i(0x2b, base, rt, offset as u16),
        Beq { rs, rt, offset } => i(0x04, rs, rt, offset as u16),
        Bne { rs, rt, offset } => i(0x05, rs, rt, offset as u16),
        Blez { rs, offset } => i(0x06, rs, Z, offset as u16),
        Bgtz { rs, offset } => i(0x07, rs, Z, offset as u16),
        Bltz { rs, offset } => i(0x01, rs, Z, offset as u16),
        Bgez { rs, offset } => {
            (0x01 << 26) | ((rs as u32) << 21) | (1 << 16) | (offset as u16 as u32)
        }
        J { target } => (0x02 << 26) | (target & 0x03ff_ffff),
        Jal { target } => (0x03 << 26) | (target & 0x03ff_ffff),
    }
}

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] for opcodes/function codes outside the supported
/// MIPS-I subset. The decompiler surfaces this as a binary-parsing failure.
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    use Instr::*;
    let op = word >> 26;
    let rs = Reg::from_number(((word >> 21) & 0x1f) as u8).expect("5-bit field");
    let rt = Reg::from_number(((word >> 16) & 0x1f) as u8).expect("5-bit field");
    let rd = Reg::from_number(((word >> 11) & 0x1f) as u8).expect("5-bit field");
    let shamt = ((word >> 6) & 0x1f) as u8;
    let funct = word & 0x3f;
    let imm_i = word as u16 as i16;
    let imm_u = word as u16;
    let err = Err(DecodeError { word });
    Ok(match op {
        0 => match funct {
            0x00 => Sll { rd, rt, shamt },
            0x02 => Srl { rd, rt, shamt },
            0x03 => Sra { rd, rt, shamt },
            0x04 => Sllv { rd, rt, rs },
            0x06 => Srlv { rd, rt, rs },
            0x07 => Srav { rd, rt, rs },
            0x08 => Jr { rs },
            0x09 => Jalr { rd, rs },
            0x0d => Break {
                code: (word >> 6) & 0xf_ffff,
            },
            0x10 => Mfhi { rd },
            0x11 => Mthi { rs },
            0x12 => Mflo { rd },
            0x13 => Mtlo { rs },
            0x18 => Mult { rs, rt },
            0x19 => Multu { rs, rt },
            0x1a => Div { rs, rt },
            0x1b => Divu { rs, rt },
            0x20 => Add { rd, rs, rt },
            0x21 => Addu { rd, rs, rt },
            0x22 => Sub { rd, rs, rt },
            0x23 => Subu { rd, rs, rt },
            0x24 => And { rd, rs, rt },
            0x25 => Or { rd, rs, rt },
            0x26 => Xor { rd, rs, rt },
            0x27 => Nor { rd, rs, rt },
            0x2a => Slt { rd, rs, rt },
            0x2b => Sltu { rd, rs, rt },
            _ => return err,
        },
        0x01 => match (word >> 16) & 0x1f {
            0 => Bltz { rs, offset: imm_i },
            1 => Bgez { rs, offset: imm_i },
            _ => return err,
        },
        0x02 => J {
            target: word & 0x03ff_ffff,
        },
        0x03 => Jal {
            target: word & 0x03ff_ffff,
        },
        0x04 => Beq {
            rs,
            rt,
            offset: imm_i,
        },
        0x05 => Bne {
            rs,
            rt,
            offset: imm_i,
        },
        0x06 if rt == Reg::Zero => Blez { rs, offset: imm_i },
        0x07 if rt == Reg::Zero => Bgtz { rs, offset: imm_i },
        0x08 => Addi {
            rt,
            rs,
            imm: imm_i,
        },
        0x09 => Addiu {
            rt,
            rs,
            imm: imm_i,
        },
        0x0a => Slti {
            rt,
            rs,
            imm: imm_i,
        },
        0x0b => Sltiu {
            rt,
            rs,
            imm: imm_i,
        },
        0x0c => Andi {
            rt,
            rs,
            imm: imm_u,
        },
        0x0d => Ori {
            rt,
            rs,
            imm: imm_u,
        },
        0x0e => Xori {
            rt,
            rs,
            imm: imm_u,
        },
        0x0f => Lui { rt, imm: imm_u },
        0x20 => Lb {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x21 => Lh {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x23 => Lw {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x24 => Lbu {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x25 => Lhu {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x28 => Sb {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x29 => Sh {
            rt,
            base: rs,
            offset: imm_i,
        },
        0x2b => Sw {
            rt,
            base: rs,
            offset: imm_i,
        },
        _ => return err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn nop_encodes_to_zero_word() {
        assert_eq!(encode(Instr::NOP), 0);
        assert_eq!(decode(0).unwrap(), Instr::NOP);
    }

    #[test]
    fn known_encodings_match_mips_manual() {
        // addu $t0, $t1, $t2 => 0x012a4021
        assert_eq!(
            encode(Instr::Addu {
                rd: Reg::T0,
                rs: Reg::T1,
                rt: Reg::T2
            }),
            0x012a_4021
        );
        // lw $a0, 8($sp) => 0x8fa40008
        assert_eq!(
            encode(Instr::Lw {
                rt: Reg::A0,
                base: Reg::Sp,
                offset: 8
            }),
            0x8fa4_0008
        );
        // jr $ra => 0x03e00008
        assert_eq!(encode(Instr::Jr { rs: Reg::Ra }), 0x03e0_0008);
        // beq $zero, $zero, -1 => 0x1000ffff
        assert_eq!(
            encode(Instr::Beq {
                rs: Reg::Zero,
                rt: Reg::Zero,
                offset: -1
            }),
            0x1000_ffff
        );
    }

    #[test]
    fn undecodable_words_error() {
        // opcode 0x3f is not in the subset
        assert!(decode(0xfc00_0000).is_err());
        // SPECIAL funct 0x3f unsupported
        assert!(decode(0x0000_003f).is_err());
        let e = decode(0xfc00_0000).unwrap_err();
        assert_eq!(e.word, 0xfc00_0000);
        assert!(e.to_string().contains("fc000000"));
    }

    // Seeded-random property checks (the offline container cannot fetch
    // proptest; the local deterministic `rand` shim stands in).

    fn arb_reg(rng: &mut StdRng) -> Reg {
        Reg::from_number(rng.gen_range(0..32) as u8).unwrap()
    }

    fn arb_instr(rng: &mut StdRng) -> Instr {
        use Instr::*;
        let r = |rng: &mut StdRng| arb_reg(rng);
        let i16r = |rng: &mut StdRng| (rng.gen::<u32>() & 0xffff) as u16 as i16;
        let u16r = |rng: &mut StdRng| (rng.gen::<u32>() & 0xffff) as u16;
        match rng.gen_range(0..19) {
            0 => Addu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            1 => Subu {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            2 => Slt {
                rd: r(rng),
                rs: r(rng),
                rt: r(rng),
            },
            3 => Sll {
                rd: r(rng),
                rt: r(rng),
                shamt: rng.gen_range(0..32) as u8,
            },
            4 => Sra {
                rd: r(rng),
                rt: r(rng),
                shamt: rng.gen_range(0..32) as u8,
            },
            5 => Addiu {
                rt: r(rng),
                rs: r(rng),
                imm: i16r(rng),
            },
            6 => Ori {
                rt: r(rng),
                rs: r(rng),
                imm: u16r(rng),
            },
            7 => Lui {
                rt: r(rng),
                imm: u16r(rng),
            },
            8 => Lw {
                rt: r(rng),
                base: r(rng),
                offset: i16r(rng),
            },
            9 => Sw {
                rt: r(rng),
                base: r(rng),
                offset: i16r(rng),
            },
            10 => Beq {
                rs: r(rng),
                rt: r(rng),
                offset: i16r(rng),
            },
            11 => Bgez {
                rs: r(rng),
                offset: i16r(rng),
            },
            12 => Bltz {
                rs: r(rng),
                offset: i16r(rng),
            },
            13 => J {
                target: rng.gen::<u32>() & 0x03ff_ffff,
            },
            14 => Jal {
                target: rng.gen::<u32>() & 0x03ff_ffff,
            },
            15 => Jr { rs: r(rng) },
            16 => Mult {
                rs: r(rng),
                rt: r(rng),
            },
            17 => Divu {
                rs: r(rng),
                rt: r(rng),
            },
            _ => Mflo { rd: r(rng) },
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x5eed_0001);
        for _ in 0..20_000 {
            let instr = arb_instr(&mut rng);
            let word = encode(instr);
            let back = decode(word).expect("decodable");
            assert_eq!(instr, back, "word {word:#010x}");
        }
    }

    #[test]
    fn decode_encode_is_identity_when_decodable() {
        let mut rng = StdRng::seed_from_u64(0x5eed_0002);
        let mut decodable = 0u32;
        for _ in 0..200_000 {
            let word: u32 = rng.gen();
            if let Ok(instr) = decode(word) {
                decodable += 1;
                // Re-encoding may canonicalize don't-care fields, but decoding
                // again must give the same instruction.
                let word2 = encode(instr);
                assert_eq!(decode(word2).unwrap(), instr, "word {word:#010x}");
            }
        }
        assert!(decodable > 0, "sample never hit a decodable word");
    }
}
