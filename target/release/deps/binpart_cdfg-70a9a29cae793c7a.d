/root/repo/target/release/deps/binpart_cdfg-70a9a29cae793c7a.d: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

/root/repo/target/release/deps/libbinpart_cdfg-70a9a29cae793c7a.rlib: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

/root/repo/target/release/deps/libbinpart_cdfg-70a9a29cae793c7a.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs

crates/cdfg/src/lib.rs:
crates/cdfg/src/cfg.rs:
crates/cdfg/src/dataflow.rs:
crates/cdfg/src/dom.rs:
crates/cdfg/src/ir.rs:
crates/cdfg/src/loops.rs:
crates/cdfg/src/ssa.rs:
crates/cdfg/src/structure.rs:
