/root/repo/target/release/deps/binpart_platform-ae4f871b799ac28c.d: crates/platform/src/lib.rs

/root/repo/target/release/deps/libbinpart_platform-ae4f871b799ac28c.rlib: crates/platform/src/lib.rs

/root/repo/target/release/deps/libbinpart_platform-ae4f871b799ac28c.rmeta: crates/platform/src/lib.rs

crates/platform/src/lib.rs:
