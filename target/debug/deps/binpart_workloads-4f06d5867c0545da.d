/root/repo/target/debug/deps/binpart_workloads-4f06d5867c0545da.d: crates/workloads/src/lib.rs

/root/repo/target/debug/deps/binpart_workloads-4f06d5867c0545da: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
