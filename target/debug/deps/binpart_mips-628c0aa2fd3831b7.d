/root/repo/target/debug/deps/binpart_mips-628c0aa2fd3831b7.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

/root/repo/target/debug/deps/libbinpart_mips-628c0aa2fd3831b7.rlib: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

/root/repo/target/debug/deps/libbinpart_mips-628c0aa2fd3831b7.rmeta: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/binary.rs:
crates/mips/src/cycles.rs:
crates/mips/src/encode.rs:
crates/mips/src/instr.rs:
crates/mips/src/reference.rs:
crates/mips/src/reg.rs:
crates/mips/src/sim.rs:
