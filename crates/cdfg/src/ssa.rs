//! Pruned-SSA construction (Cytron-style phi placement on dominance
//! frontiers + dominator-tree renaming) and SSA verification.
//!
//! Lifted machine code defines each architectural register many times; SSA
//! gives every definition a unique name so the decompiler's constant
//! propagation, size reduction, strength promotion, and loop rerolling all
//! become simple def-use rewrites.

use crate::cfg;
use crate::dom::Dominators;
use crate::ir::{BlockId, Function, Inst, Op, Operand, Terminator, VReg};
use std::collections::HashMap;
use std::fmt;

/// Mapping information produced by [`construct`].
#[derive(Debug, Clone, Default)]
pub struct SsaInfo {
    /// For every variable that was read before any definition (function
    /// arguments, callee-saved registers, the stack pointer): the original
    /// register and the SSA name representing its entry value.
    pub live_ins: Vec<(VReg, VReg)>,
}

impl SsaInfo {
    /// SSA name of the entry value of original register `r`, if it was
    /// live-in.
    pub fn live_in(&self, r: VReg) -> Option<VReg> {
        self.live_ins.iter().find(|(o, _)| *o == r).map(|(_, n)| *n)
    }
}

/// Converts `f` to SSA form in place.
///
/// Returns which original registers were live into the function (reads of
/// registers with no dominating definition); the decompiler uses those to
/// recover the calling convention.
///
/// Every working structure is a dense array indexed by register or block
/// number — the original-name space is fixed at entry, so definition
/// sites, rename stacks, and live-in slots all live in flat `Vec`s rather
/// than hash maps. [`reference_construct`] keeps the original map-based
/// implementation as a differential oracle; both produce bit-identical
/// functions (same phi placement, same fresh-name order).
pub fn construct(f: &mut Function) -> SsaInfo {
    cfg::remove_unreachable(f);
    let dom = Dominators::compute(f);
    let preds = cfg::predecessors(f);
    let nblocks = f.blocks.len();
    // Original (pre-SSA) name space: every register mentioned before
    // renaming is below this bound.
    let n0 = f.vreg_count() as usize;

    // Collect definition sites per original variable, and the "globals"
    // (names that are upward-exposed in some block => live across an edge).
    // `globals` keeps first-appearance order (it determines phi insertion
    // order); membership tests use bitsets.
    // CSR layout for definition sites: one flat array plus per-variable
    // offsets, instead of a heap-allocated list per variable.
    let mut def_count: Vec<u32> = vec![0; n0 + 1];
    let mut globals: Vec<VReg> = Vec::new();
    let mut is_global = crate::dataflow::RegSet::new(n0);
    // Epoch-stamped "defined in current block" marker: avoids clearing a
    // bitset per block.
    let mut defined_epoch: Vec<u32> = vec![0; n0];
    for b in f.block_ids() {
        let epoch = b.index() as u32 + 1;
        let mut note_use = |o: &Operand, defined_epoch: &[u32]| {
            if let Operand::Reg(r) = o {
                if defined_epoch[r.index()] != epoch && is_global.insert(*r) {
                    globals.push(*r);
                }
            }
        };
        for inst in &f.block(b).ops {
            inst.op.for_each_use(|o| note_use(o, &defined_epoch));
            if let Some(d) = inst.op.dst() {
                defined_epoch[d.index()] = epoch;
                def_count[d.index() + 1] += 1;
            }
        }
        f.block(b)
            .term
            .for_each_use(|o| note_use(o, &defined_epoch));
    }
    for i in 1..=n0 {
        def_count[i] += def_count[i - 1];
    }
    let def_off = def_count; // prefix sums: defs of var v sit in off[v]..off[v+1]
    let mut def_flat: Vec<BlockId> = vec![BlockId(0); *def_off.last().unwrap() as usize];
    let mut cursor: Vec<u32> = def_off[..n0].to_vec();
    for b in f.block_ids() {
        for inst in &f.block(b).ops {
            if let Some(d) = inst.op.dst() {
                def_flat[cursor[d.index()] as usize] = b;
                cursor[d.index()] += 1;
            }
        }
    }

    // Phi insertion at iterated dominance frontiers (only for globals).
    let mut placed = vec![0u32; nblocks];
    let mut ever_on_work = vec![0u32; nblocks];
    let mut work: Vec<BlockId> = Vec::new();
    for (vi, &var) in globals.iter().enumerate() {
        let defs =
            &def_flat[def_off[var.index()] as usize..def_off[var.index() + 1] as usize];
        if defs.is_empty() {
            continue;
        }
        let epoch = vi as u32 + 1;
        work.clear();
        work.extend_from_slice(defs);
        for &b in &work {
            ever_on_work[b.index()] = epoch;
        }
        while let Some(b) = work.pop() {
            for &df in dom.frontier(b) {
                if placed[df.index()] == epoch {
                    continue;
                }
                placed[df.index()] = epoch;
                let args = preds[df.index()]
                    .iter()
                    .map(|&p| (p, Operand::Reg(var)))
                    .collect();
                let block = f.block_mut(df);
                block.ops.insert(0, Inst::new(Op::Phi { dst: var, args }));
                if ever_on_work[df.index()] != epoch {
                    ever_on_work[df.index()] = epoch;
                    work.push(df);
                }
            }
        }
    }

    // Renaming. All pre-rename names are < n0, so the current-name table
    // and live-in slots are flat arrays over the original name space. The
    // per-variable rename *stack* of the textbook algorithm is replaced by
    // a current-name array plus an undo log per dom-tree frame: entering a
    // block records (var, previous name) for each definition, exiting
    // restores them — the same top-of-stack the recursive walk sees,
    // without a heap-allocated stack per variable.
    const NO_NAME: VReg = VReg(u32::MAX);
    let mut current: Vec<VReg> = vec![NO_NAME; n0];
    let mut live_in_names: Vec<Option<VReg>> = vec![None; n0];
    let mut info = SsaInfo::default();
    let mut current_name = |r: VReg,
                            current: &[VReg],
                            live_in_names: &mut [Option<VReg>]|
     -> VReg {
        let cur = current[r.index()];
        if cur != NO_NAME {
            return cur;
        }
        *live_in_names[r.index()].get_or_insert_with(|| {
            let name = VReg(LIVE_IN_BASE + info.live_ins.len() as u32);
            info.live_ins.push((r, name));
            name
        })
    };

    // Iterative dom-tree walk to avoid recursion depth limits.
    enum Frame {
        Enter(BlockId),
        Exit(Vec<(VReg, VReg)>),
    }
    let mut stack = vec![Frame::Enter(f.entry)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(b) => {
                // Undo log: (var, name to restore on frame exit).
                let mut pushed: Vec<(VReg, VReg)> = Vec::new();
                // Rename within the block.
                let mut new_ops: Vec<Inst> = Vec::new();
                let ops = std::mem::take(&mut f.block_mut(b).ops);

                for mut inst in ops {
                    let is_phi = matches!(inst.op, Op::Phi { .. });
                    if !is_phi {
                        inst.op.for_each_use_mut(|o| {
                            if let Operand::Reg(r) = o {
                                let cur = current_name(*r, &current, &mut live_in_names);
                                *o = Operand::Reg(cur);
                            }
                        });
                    }
                    if let Some(d) = inst.op.dst() {
                        let fresh = f.new_vreg();
                        inst.op.set_dst(fresh);
                        pushed.push((d, current[d.index()]));
                        current[d.index()] = fresh;
                    }
                    new_ops.push(inst);
                }
                f.block_mut(b).ops = new_ops;
                let mut term = std::mem::replace(&mut f.block_mut(b).term, Terminator::None);
                term.for_each_use_mut(|o| {
                    if let Operand::Reg(r) = o {
                        let cur = current_name(*r, &current, &mut live_in_names);
                        *o = Operand::Reg(cur);
                    }
                });
                f.block_mut(b).term = term;
                // Fill phi arguments in successors.
                for s in f.block(b).term.successors() {
                    let nphis = f
                        .block(s)
                        .ops
                        .iter()
                        .take_while(|i| matches!(i.op, Op::Phi { .. }))
                        .count();
                    for k in 0..nphis {
                        // The arg slot for predecessor b still holds the
                        // original variable this phi renames.
                        let block = f.block_mut(s);
                        if let Op::Phi { args, .. } = &mut block.ops[k].op {
                            for (p, a) in args.iter_mut() {
                                if *p == b {
                                    // Slots already renamed (>= n0) are
                                    // skipped: a block can appear twice in
                                    // a successor list.
                                    if let Operand::Reg(orig) = a {
                                        if orig.index() < n0 {
                                            let cur =
                                                current_name(*orig, &current, &mut live_in_names);
                                            *a = Operand::Reg(cur);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                stack.push(Frame::Exit(pushed));
                for &c in dom.children(b) {
                    stack.push(Frame::Enter(c));
                }
            }
            Frame::Exit(pushed) => {
                // Restore in reverse so a block with several definitions of
                // the same variable unwinds to its pre-block name.
                for (var, prev) in pushed.into_iter().rev() {
                    current[var.index()] = prev;
                }
            }
        }
    }

    // Live-in placeholders were minted in a provisional high range; remap
    // them into the function's normal register space (indexable by their
    // offset from the base).
    if !info.live_ins.is_empty() {
        let mut remap: Vec<VReg> = Vec::with_capacity(info.live_ins.len());
        for (_, name) in info.live_ins.iter_mut() {
            let fresh = f.new_vreg();
            remap.push(fresh);
            *name = fresh;
        }
        let resolve = |o: &mut Operand| {
            if let Operand::Reg(r) = o {
                if r.0 >= LIVE_IN_BASE {
                    *o = Operand::Reg(remap[(r.0 - LIVE_IN_BASE) as usize]);
                }
            }
        };
        for b in f.block_ids().collect::<Vec<_>>() {
            let block = f.block_mut(b);
            for inst in &mut block.ops {
                inst.op.for_each_use_mut(resolve);
            }
            block.term.for_each_use_mut(resolve);
        }
    }

    f.is_ssa = true;
    info
}

// Live-in names are minted from a provisional high range while the function
// is being rewritten, then remapped to ordinary registers at the end. The
// base comfortably exceeds any lifted function's register count.
const LIVE_IN_BASE: u32 = 1 << 20;

/// The original map-based SSA construction, retained verbatim as the
/// differential oracle for [`construct`] (see `tests/differential.rs`):
/// both must produce bit-identical functions — same phi placement, same
/// fresh-name numbering, same live-in order.
pub fn reference_construct(f: &mut Function) -> SsaInfo {
    fn current_name(
        r: VReg,
        stacks: &HashMap<VReg, Vec<VReg>>,
        live_in_names: &mut HashMap<VReg, VReg>,
        info: &mut SsaInfo,
    ) -> VReg {
        if let Some(s) = stacks.get(&r) {
            if let Some(&top) = s.last() {
                return top;
            }
        }
        *live_in_names.entry(r).or_insert_with(|| {
            let name = VReg(LIVE_IN_BASE + info.live_ins.len() as u32);
            info.live_ins.push((r, name));
            name
        })
    }

    cfg::remove_unreachable(f);
    let dom = Dominators::compute(f);
    let preds = cfg::predecessors(f);
    let nblocks = f.blocks.len();

    let mut def_blocks: HashMap<VReg, Vec<BlockId>> = HashMap::new();
    let mut globals: Vec<VReg> = Vec::new();
    for b in f.block_ids() {
        let mut defined_here: Vec<VReg> = Vec::new();
        let note_use = |o: &Operand, defined_here: &Vec<VReg>, globals: &mut Vec<VReg>| {
            if let Operand::Reg(r) = o {
                if !defined_here.contains(r) && !globals.contains(r) {
                    globals.push(*r);
                }
            }
        };
        for inst in &f.block(b).ops {
            inst.op
                .for_each_use(|o| note_use(o, &defined_here, &mut globals));
            if let Some(d) = inst.op.dst() {
                if !defined_here.contains(&d) {
                    defined_here.push(d);
                }
                def_blocks.entry(d).or_default().push(b);
            }
        }
        f.block(b)
            .term
            .for_each_use(|o| note_use(o, &defined_here, &mut globals));
    }

    for &var in &globals {
        let Some(defs) = def_blocks.get(&var) else {
            continue;
        };
        if defs.is_empty() {
            continue;
        }
        let mut work: Vec<BlockId> = defs.clone();
        let mut placed = vec![false; nblocks];
        let mut ever_on_work = vec![false; nblocks];
        for &b in &work {
            ever_on_work[b.index()] = true;
        }
        while let Some(b) = work.pop() {
            for &df in dom.frontier(b) {
                if placed[df.index()] {
                    continue;
                }
                placed[df.index()] = true;
                let args = preds[df.index()]
                    .iter()
                    .map(|&p| (p, Operand::Reg(var)))
                    .collect();
                let block = f.block_mut(df);
                block.ops.insert(0, Inst::new(Op::Phi { dst: var, args }));
                if !ever_on_work[df.index()] {
                    ever_on_work[df.index()] = true;
                    work.push(df);
                }
            }
        }
    }

    let mut stacks: HashMap<VReg, Vec<VReg>> = HashMap::new();
    let mut live_in_names: HashMap<VReg, VReg> = HashMap::new();
    let mut info = SsaInfo::default();

    enum Frame {
        Enter(BlockId),
        Exit(Vec<(VReg, usize)>),
    }
    let mut stack = vec![Frame::Enter(f.entry)];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(b) => {
                let mut pushed: Vec<(VReg, usize)> = Vec::new();
                let mut new_ops: Vec<Inst> = Vec::new();
                let ops = std::mem::take(&mut f.block_mut(b).ops);

                for mut inst in ops {
                    let is_phi = matches!(inst.op, Op::Phi { .. });
                    if !is_phi {
                        inst.op.for_each_use_mut(|o| {
                            if let Operand::Reg(r) = o {
                                let cur = current_name(*r, &stacks, &mut live_in_names, &mut info);
                                *o = Operand::Reg(cur);
                            }
                        });
                    }
                    if let Some(d) = inst.op.dst() {
                        let fresh = f.new_vreg();
                        inst.op.set_dst(fresh);
                        stacks.entry(d).or_default().push(fresh);
                        pushed.push((d, 1));
                    }
                    new_ops.push(inst);
                }
                f.block_mut(b).ops = new_ops;
                let mut term = std::mem::replace(&mut f.block_mut(b).term, Terminator::None);
                term.for_each_use_mut(|o| {
                    if let Operand::Reg(r) = o {
                        let cur = current_name(*r, &stacks, &mut live_in_names, &mut info);
                        *o = Operand::Reg(cur);
                    }
                });
                f.block_mut(b).term = term;
                for s in f.block(b).term.successors() {
                    let idxs: Vec<usize> = f
                        .block(s)
                        .ops
                        .iter()
                        .enumerate()
                        .take_while(|(_, i)| matches!(i.op, Op::Phi { .. }))
                        .map(|(k, _)| k)
                        .collect();
                    for k in idxs {
                        let block = f.block_mut(s);
                        if let Op::Phi { args, .. } = &mut block.ops[k].op {
                            for (p, a) in args.iter_mut() {
                                if *p == b {
                                    if let Operand::Reg(orig) = a {
                                        let cur = current_name(
                                            *orig,
                                            &stacks,
                                            &mut live_in_names,
                                            &mut info,
                                        );
                                        *a = Operand::Reg(cur);
                                    }
                                }
                            }
                        }
                    }
                }
                stack.push(Frame::Exit(pushed));
                for &c in dom.children(b) {
                    stack.push(Frame::Enter(c));
                }
            }
            Frame::Exit(pushed) => {
                for (var, n) in pushed {
                    let s = stacks.get_mut(&var).expect("pushed");
                    for _ in 0..n {
                        s.pop();
                    }
                }
            }
        }
    }

    if !info.live_ins.is_empty() {
        let mut remap: HashMap<VReg, VReg> = HashMap::new();
        for (_, name) in info.live_ins.iter_mut() {
            let fresh = f.new_vreg();
            remap.insert(*name, fresh);
            *name = fresh;
        }
        for b in f.block_ids().collect::<Vec<_>>() {
            let block = f.block_mut(b);
            for inst in &mut block.ops {
                inst.op.for_each_use_mut(|o| {
                    if let Operand::Reg(r) = o {
                        if let Some(n) = remap.get(r) {
                            *o = Operand::Reg(*n);
                        }
                    }
                });
            }
            block.term.for_each_use_mut(|o| {
                if let Operand::Reg(r) = o {
                    if let Some(n) = remap.get(r) {
                        *o = Operand::Reg(*n);
                    }
                }
            });
        }
    }

    f.is_ssa = true;
    info
}

/// SSA well-formedness violation found by [`verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SsaViolation {
    /// A register has more than one definition.
    MultipleDefs(VReg),
    /// A phi's argument count does not match its block's predecessors.
    PhiArity {
        /// Block containing the phi.
        block: BlockId,
        /// The phi destination.
        phi: VReg,
    },
    /// A phi appears after a non-phi op.
    PhiNotFirst(BlockId),
    /// A use is not dominated by its definition.
    UseNotDominated {
        /// The used register.
        reg: VReg,
        /// The block of the use.
        block: BlockId,
    },
}

impl fmt::Display for SsaViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaViolation::MultipleDefs(r) => write!(f, "{r} has multiple definitions"),
            SsaViolation::PhiArity { block, phi } => {
                write!(f, "phi {phi} in {block} has wrong arity")
            }
            SsaViolation::PhiNotFirst(b) => write!(f, "phi after non-phi in {b}"),
            SsaViolation::UseNotDominated { reg, block } => {
                write!(f, "use of {reg} in {block} not dominated by its definition")
            }
        }
    }
}

impl std::error::Error for SsaViolation {}

/// Checks SSA invariants.
///
/// # Errors
///
/// Returns the first violation found: duplicate definitions, phi arity
/// mismatches, phis after non-phis, or uses not dominated by definitions.
pub fn verify(f: &Function) -> Result<(), SsaViolation> {
    let dom = Dominators::compute(f);
    let preds = cfg::predecessors(f);
    let mut def_site: Vec<Option<(BlockId, usize)>> = vec![None; f.vreg_count() as usize];
    for b in f.block_ids() {
        let mut seen_non_phi = false;
        for (k, inst) in f.block(b).ops.iter().enumerate() {
            if matches!(inst.op, Op::Phi { .. }) {
                if seen_non_phi {
                    return Err(SsaViolation::PhiNotFirst(b));
                }
            } else {
                seen_non_phi = true;
            }
            if let Some(d) = inst.op.dst() {
                if def_site[d.index()].replace((b, k)).is_some() {
                    return Err(SsaViolation::MultipleDefs(d));
                }
            }
            if let Op::Phi { dst, args } = &inst.op {
                let ps = &preds[b.index()];
                if args.len() != ps.len() || args.iter().any(|(p, _)| !ps.contains(p)) {
                    return Err(SsaViolation::PhiArity { block: b, phi: *dst });
                }
            }
        }
    }
    // Dominance of uses.
    for b in f.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        for (k, inst) in f.block(b).ops.iter().enumerate() {
            if let Op::Phi { args, .. } = &inst.op {
                for (p, a) in args {
                    if let Operand::Reg(r) = a {
                        if let Some((db, _)) = def_site.get(r.index()).copied().flatten() {
                            if !dom.dominates(db, *p) {
                                return Err(SsaViolation::UseNotDominated { reg: *r, block: *p });
                            }
                        }
                    }
                }
            } else {
                let mut bad = None;
                inst.op.for_each_use(|o| {
                    if let Operand::Reg(r) = o {
                        if let Some((db, dk)) = def_site.get(r.index()).copied().flatten() {
                            let ok = if db == b { dk < k } else { dom.dominates(db, b) };
                            if !ok && bad.is_none() {
                                bad = Some(*r);
                            }
                        }
                    }
                });
                if let Some(r) = bad {
                    return Err(SsaViolation::UseNotDominated { reg: r, block: b });
                }
            }
        }
        let mut bad = None;
        f.block(b).term.for_each_use(|o| {
            if let Operand::Reg(r) = o {
                if let Some((db, _)) = def_site.get(r.index()).copied().flatten() {
                    if !(db == b || dom.dominates(db, b)) && bad.is_none() {
                        bad = Some(*r);
                    }
                }
            }
        });
        if let Some(r) = bad {
            return Err(SsaViolation::UseNotDominated { reg: r, block: b });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{BinOp, MemWidth};

    /// x = 1; if (c) x = 2; return x  — the textbook phi case.
    fn if_join() -> Function {
        let mut f = Function::new("ifj");
        let then = f.add_block();
        let join = f.add_block();
        let x = f.new_vreg();
        let c = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: x, value: 1 });
        f.block_mut(f.entry).push(Op::Load {
            dst: c,
            addr: Operand::Const(0x100),
            width: MemWidth::W,
            signed: false,
        });
        f.block_mut(f.entry).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: then,
            f: join,
        };
        f.block_mut(then).push(Op::Const { dst: x, value: 2 });
        f.block_mut(then).term = Terminator::Jump(join);
        f.block_mut(join).term = Terminator::Return {
            value: Some(Operand::Reg(x)),
        };
        f
    }

    #[test]
    fn inserts_phi_at_join() {
        let mut f = if_join();
        construct(&mut f);
        verify(&f).unwrap();
        let join = BlockId(2);
        let nphis = f
            .block(join)
            .ops
            .iter()
            .filter(|i| matches!(i.op, Op::Phi { .. }))
            .count();
        assert_eq!(nphis, 1);
        // The return must use the phi result.
        let Op::Phi { dst, .. } = &f.block(join).ops[0].op else {
            panic!("phi first");
        };
        match &f.block(join).term {
            Terminator::Return { value: Some(Operand::Reg(r)) } => assert_eq!(r, dst),
            other => panic!("unexpected terminator {other:?}"),
        }
    }

    #[test]
    fn single_defs_after_construction() {
        let mut f = if_join();
        construct(&mut f);
        let mut defs: HashMap<VReg, u32> = HashMap::new();
        for b in f.block_ids() {
            for i in &f.block(b).ops {
                if let Some(d) = i.op.dst() {
                    *defs.entry(d).or_insert(0) += 1;
                }
            }
        }
        assert!(defs.values().all(|&n| n == 1));
        assert!(f.is_ssa);
    }

    #[test]
    fn live_ins_reported_for_undefined_reads() {
        // return a0-like register that is never defined
        let mut f = Function::new("param");
        let a0 = f.new_vreg();
        let sum = f.new_vreg();
        f.block_mut(f.entry).push(Op::Bin {
            op: BinOp::Add,
            dst: sum,
            lhs: Operand::Reg(a0),
            rhs: Operand::Const(1),
        });
        f.block_mut(f.entry).term = Terminator::Return {
            value: Some(Operand::Reg(sum)),
        };
        let info = construct(&mut f);
        assert_eq!(info.live_ins.len(), 1);
        assert_eq!(info.live_ins[0].0, a0);
        assert!(info.live_in(a0).is_some());
        verify(&f).unwrap();
    }

    #[test]
    fn loop_phi_inserted_and_verifies() {
        // i = 0; while (i < 10) i++;  (same shape as the lifter emits)
        let mut f = Function::new("loop");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let c = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 0 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LtS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(10),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return {
            value: Some(Operand::Reg(i)),
        };
        construct(&mut f);
        verify(&f).unwrap();
        let header_phis = f
            .block(BlockId(1))
            .ops
            .iter()
            .filter(|x| matches!(x.op, Op::Phi { .. }))
            .count();
        assert_eq!(header_phis, 1);
    }

    #[test]
    fn verify_catches_multiple_defs() {
        let mut f = Function::new("bad");
        let x = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: x, value: 1 });
        f.block_mut(f.entry).push(Op::Const { dst: x, value: 2 });
        f.block_mut(f.entry).term = Terminator::Return { value: None };
        f.is_ssa = true;
        assert_eq!(verify(&f), Err(SsaViolation::MultipleDefs(x)));
    }

    #[test]
    fn verify_catches_bad_phi_arity() {
        let mut f = Function::new("bad2");
        let b = f.add_block();
        let x = f.new_vreg();
        f.block_mut(f.entry).term = Terminator::Jump(b);
        let e = f.entry;
        f.block_mut(b).push(Op::Phi {
            dst: x,
            args: vec![(e, Operand::Const(1)), (BlockId(1), Operand::Const(2))],
        });
        f.block_mut(b).term = Terminator::Return { value: None };
        assert!(matches!(
            verify(&f),
            Err(SsaViolation::PhiArity { .. })
        ));
    }
}
