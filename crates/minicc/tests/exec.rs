//! End-to-end execution tests: compile at every optimization level, run on
//! the MIPS simulator, and check the returned value. These tests gate the
//! whole downstream flow — the decompiler consumes exactly these binaries.

use binpart_minicc::{compile, OptLevel};
use binpart_mips::sim::Machine;
use binpart_mips::Reg;

/// Compiles and runs `src` at `level`, returning `main`'s return value.
fn run_at(src: &str, level: OptLevel) -> u32 {
    let binary = compile(src, level)
        .unwrap_or_else(|e| panic!("compile failed at {level}: {e}\nsource:\n{src}"));
    let mut m = Machine::new(&binary).expect("load");
    let exit = m
        .run()
        .unwrap_or_else(|e| panic!("run failed at {level}: {e}\nsource:\n{src}"));
    exit.reg(Reg::V0)
}

/// Asserts `src` returns `expected` at every optimization level.
fn check_all_levels(src: &str, expected: u32) {
    for level in OptLevel::ALL {
        let got = run_at(src, level);
        assert_eq!(
            got, expected,
            "wrong result at {level}: got {got}, want {expected}\nsource:\n{src}"
        );
    }
}

#[test]
fn returns_constant() {
    check_all_levels("int main(void) { return 42; }", 42);
}

#[test]
fn arithmetic_operators() {
    check_all_levels(
        "int main(void) { int a = 7; int b = 3; return a + b * 2 - a / b + a % b; }",
        7 + 6 - 2 + 1,
    );
}

#[test]
fn bitwise_and_shifts() {
    check_all_levels(
        "int main(void) { int x = 0xf0; return ((x | 0x0f) ^ 0x3c) + (x << 2) + (x >> 3); }",
        (0xff ^ 0x3c) + (0xf0 << 2) + (0xf0 >> 3),
    );
}

#[test]
fn signed_right_shift() {
    check_all_levels(
        "int main(void) { int x = -64; return (x >> 3) + 100; }",
        92,
    );
}

#[test]
fn unsigned_right_shift_and_compare() {
    check_all_levels(
        "int main(void) { unsigned int x = 0x80000000u; if (x > 0x7fffffff) return (int)(x >> 28); return 0; }",
        8,
    );
}

#[test]
fn for_loop_sum() {
    check_all_levels(
        "int main(void) { int i; int s = 0; for (i = 1; i <= 100; i++) s += i; return s; }",
        5050,
    );
}

#[test]
fn while_and_do_while() {
    check_all_levels(
        "int main(void) { int n = 10; int s = 0; while (n > 0) { s += n; n--; } do { s++; } while (s < 60); return s; }",
        60,
    );
}

#[test]
fn nested_loops() {
    check_all_levels(
        "int main(void) { int i; int j; int s = 0; for (i = 0; i < 8; i++) for (j = 0; j < 8; j++) s += i * j; return s; }",
        (0..8).map(|i| (0..8).map(|j| i * j).sum::<u32>()).sum(),
    );
}

#[test]
fn if_else_chains() {
    check_all_levels(
        "int main(void) { int x = 5; if (x < 3) return 1; else if (x < 7) return 2; else return 3; }",
        2,
    );
}

#[test]
fn global_array_sum() {
    check_all_levels(
        "int tab[8] = {1, 2, 3, 4, 5, 6, 7, 8};
         int main(void) { int i; int s = 0; for (i = 0; i < 8; i++) s += tab[i]; return s; }",
        36,
    );
}

#[test]
fn global_scalar_update() {
    check_all_levels(
        "int counter = 10;
         int main(void) { counter = counter + 5; return counter; }",
        15,
    );
}

#[test]
fn local_array_and_pointers() {
    check_all_levels(
        "int main(void) { int a[4]; int* p = a; int i; for (i = 0; i < 4; i++) a[i] = i * i; return *(p + 3) + a[1]; }",
        10,
    );
}

#[test]
fn address_of_local() {
    check_all_levels(
        "int main(void) { int x = 3; int* p = &x; *p = 11; return x; }",
        11,
    );
}

#[test]
fn char_truncation_and_sign_extension() {
    check_all_levels(
        "int main(void) { char c = 200; return c + 300; }",
        // (char)200 == -56; -56 + 300 == 244
        244,
    );
}

#[test]
fn short_arithmetic() {
    check_all_levels(
        "int main(void) { short s = 40000; return s + 50000; }",
        // (short)40000 == -25536; sum = 24464
        24464,
    );
}

#[test]
fn unsigned_char_stays_zero_extended() {
    check_all_levels(
        "int main(void) { unsigned char c = 200; return c + 1; }",
        201,
    );
}

#[test]
fn byte_array_access() {
    check_all_levels(
        "unsigned char buf[4] = {0xff, 0x01, 0x80, 0x7f};
         int main(void) { return buf[0] + buf[1] + buf[2] + buf[3]; }",
        0xff + 0x01 + 0x80 + 0x7f,
    );
}

#[test]
fn short_array_access() {
    check_all_levels(
        "short vals[3] = {-1, 300, -300};
         int main(void) { return vals[0] + vals[1] + vals[2] + 1000; }",
        999,
    );
}

#[test]
fn function_calls_and_recursion() {
    check_all_levels(
        "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
         int main(void) { return fib(12); }",
        144,
    );
}

#[test]
fn multi_arg_calls() {
    check_all_levels(
        "int mix(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
         int main(void) { return mix(1, 2, 3, 4); }",
        1234,
    );
}

#[test]
fn call_preserves_locals() {
    check_all_levels(
        "int bump(int x) { return x + 1; }
         int main(void) { int a = 5; int b = bump(10); return a + b; }",
        16,
    );
}

#[test]
fn short_circuit_evaluation() {
    check_all_levels(
        "int g = 0;
         int touch(void) { g = g + 1; return 1; }
         int main(void) { int a = 0; if (a && touch()) { } if (a || touch()) { } return g * 10 + (a || 1); }",
        11,
    );
}

#[test]
fn ternary_expression() {
    check_all_levels(
        "int main(void) { int x = 7; return x > 5 ? x * 2 : x * 3; }",
        14,
    );
}

#[test]
fn switch_sparse() {
    check_all_levels(
        "int main(void) { int x = 40; int r = 0;
           switch (x) { case 1: r = 10; break; case 40: r = 77; break; case 100: r = 3; break; default: r = 9; }
           return r; }",
        77,
    );
}

#[test]
fn switch_dense_jump_table() {
    // 6 dense cases: becomes a jump table at -O2/-O3.
    let src = "int main(void) { int i; int acc = 0;
        for (i = 0; i < 6; i++) {
          switch (i) {
            case 0: acc += 1; break;
            case 1: acc += 2; break;
            case 2: acc += 4; break;
            case 3: acc += 8; break;
            case 4: acc += 16; break;
            case 5: acc += 32; break;
          }
        }
        return acc; }";
    check_all_levels(src, 63);
}

#[test]
fn switch_default_only_path() {
    check_all_levels(
        "int main(void) { switch (9) { case 1: return 1; case 2: return 2; case 3: return 3; case 4: return 4; } return 42; }",
        42,
    );
}

#[test]
fn multiplication_strength_patterns() {
    // x*8 (pow2), x*10 (two bits), x*7 (2^3-1): all strength-reduced at O2.
    check_all_levels(
        "int main(void) { int x = 9; return x * 8 + x * 10 + x * 7; }",
        9 * 25,
    );
}

#[test]
fn signed_division_by_pow2() {
    check_all_levels(
        "int main(void) { int a = -37; int b = 37; return (a / 4) * 1000 + b / 4; }",
        // C truncates toward zero: -37/4 == -9
        (-9i32 * 1000 + 9) as u32,
    );
}

#[test]
fn unsigned_div_rem() {
    check_all_levels(
        "int main(void) { unsigned int a = 0xfffffff0u; return (int)(a / 16u % 256u); }",
        (0xfffffff0u32 / 16) % 256,
    );
}

#[test]
fn unrollable_loop_is_correct_at_o3() {
    check_all_levels(
        "int a[16];
         int main(void) { int i; int s = 0;
           for (i = 0; i < 16; i++) a[i] = i;
           for (i = 0; i < 16; i++) s += a[i] * 3;
           return s; }",
        (0..16).map(|i| i * 3).sum(),
    );
}

#[test]
fn increments_in_expressions() {
    check_all_levels(
        "int main(void) { int i = 0; int a[4]; a[i++] = 5; a[i++] = 6; return a[0] * 10 + a[1] + i; }",
        58,
    );
}

#[test]
fn comparison_materialization() {
    check_all_levels(
        "int main(void) { int a = 3; int b = 7;
           return (a < b) + (a > b) * 2 + (a == 3) * 4 + (b != 7) * 8 + (a <= 3) * 16 + (b >= 8) * 32; }",
        1 + 4 + 16,
    );
}

#[test]
fn crc_like_kernel() {
    // Exercises xor/shift/conditional inside a loop, like the CRC benchmark.
    let src = "unsigned int main_helper(unsigned int crc, unsigned int data) {
          int k;
          crc = crc ^ data;
          for (k = 0; k < 8; k++) {
            if (crc & 1) crc = (crc >> 1) ^ 0xEDB88320u;
            else crc = crc >> 1;
          }
          return crc;
        }
        int main(void) {
          unsigned int crc = 0xFFFFFFFFu;
          int i;
          for (i = 0; i < 4; i++) crc = main_helper(crc, (unsigned int)i);
          return (int)(crc & 0xFFFF);
        }";
    let expected = {
        let mut crc: u32 = 0xffff_ffff;
        for i in 0..4u32 {
            crc ^= i;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
        }
        crc & 0xffff
    };
    check_all_levels(src, expected);
}

#[test]
fn matrix_multiply_kernel() {
    let src = "int a[16]; int b[16]; int c[16];
        int main(void) {
          int i; int j; int k;
          for (i = 0; i < 16; i++) { a[i] = i + 1; b[i] = 16 - i; }
          for (i = 0; i < 4; i++)
            for (j = 0; j < 4; j++) {
              int acc = 0;
              for (k = 0; k < 4; k++) acc += a[i * 4 + k] * b[k * 4 + j];
              c[i * 4 + j] = acc;
            }
          return c[0] + c[5] + c[10] + c[15];
        }";
    let expected = {
        let a: Vec<i32> = (0..16).map(|i| i + 1).collect();
        let b: Vec<i32> = (0..16).map(|i| 16 - i).collect();
        let mut c = [0i32; 16];
        for i in 0..4 {
            for j in 0..4 {
                c[i * 4 + j] = (0..4).map(|k| a[i * 4 + k] * b[k * 4 + j]).sum();
            }
        }
        (c[0] + c[5] + c[10] + c[15]) as u32
    };
    check_all_levels(src, expected);
}

#[test]
fn pointer_walk_through_global() {
    check_all_levels(
        "int data[5] = {3, 1, 4, 1, 5};
         int sum(int* p, int n) { int s = 0; int i; for (i = 0; i < n; i++) s += p[i]; return s; }
         int main(void) { return sum(data, 5); }",
        14,
    );
}

#[test]
fn o0_heavier_than_o2() {
    // Sanity: -O0 should execute measurably more instructions than -O2.
    let src = "int main(void) { int i; int s = 0; for (i = 0; i < 50; i++) s += i * 3; return s; }";
    let run = |level| {
        let b = compile(src, level).unwrap();
        let mut m = Machine::new(&b).unwrap();
        m.run().unwrap().instrs
    };
    let o0 = run(OptLevel::O0);
    let o2 = run(OptLevel::O2);
    assert!(
        o0 * 2 > o2 * 3,
        "expected -O0 ({o0} instrs) to be at least 1.5x slower than -O2 ({o2} instrs)"
    );
}

#[test]
fn higher_levels_do_not_regress_speed() {
    let src = "int a[32];
        int main(void) { int i; int s = 0;
          for (i = 0; i < 32; i++) a[i] = i * 5;
          for (i = 0; i < 32; i++) s += a[i];
          return s; }";
    let cycles = |level| {
        let b = compile(src, level).unwrap();
        let mut m = Machine::new(&b).unwrap();
        m.run().unwrap().cycles
    };
    let c0 = cycles(OptLevel::O0);
    let c1 = cycles(OptLevel::O1);
    let c2 = cycles(OptLevel::O2);
    let c3 = cycles(OptLevel::O3);
    assert!(c1 <= c0, "O1 {c1} vs O0 {c0}");
    assert!(c2 <= c1, "O2 {c2} vs O1 {c1}");
    assert!(c3 <= c2 + c2 / 4, "O3 {c3} much worse than O2 {c2}");
}

#[test]
fn deep_spill_pressure() {
    // More than 16 simultaneously-live values forces spilling at -O1+.
    let src = "int main(void) {
        int a=1; int b=2; int c=3; int d=4; int e=5; int f=6; int g=7; int h=8;
        int i=9; int j=10; int k=11; int l=12; int m=13; int n=14; int o=15; int p=16;
        int q=17; int r=18; int s=19; int t=20;
        int x = a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p+q+r+s+t;
        return x + a*b + s*t; }";
    check_all_levels(src, 210 + 2 + 380);
}

#[test]
fn comments_and_formats_accepted() {
    check_all_levels(
        "/* block */ int main(void) { // line
           return 0x10 + 010 + 'A'; }",
        16 + 8 + 65,
    );
}
