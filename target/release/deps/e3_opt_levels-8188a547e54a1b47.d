/root/repo/target/release/deps/e3_opt_levels-8188a547e54a1b47.d: crates/bench/benches/e3_opt_levels.rs

/root/repo/target/release/deps/e3_opt_levels-8188a547e54a1b47: crates/bench/benches/e3_opt_levels.rs

crates/bench/benches/e3_opt_levels.rs:
