//! Minimal data-parallel iteration over scoped threads.
//!
//! The experiment harness wants rayon's `par_iter().map().collect()`, but
//! the build container has no crates.io access, so this crate provides the
//! one primitive the harness needs: an order-preserving [`par_map`] built on
//! [`std::thread::scope`] with an atomic work-stealing cursor. Workers pull
//! the next unclaimed index, so uneven item costs (e.g. `-O3` binaries that
//! simulate longer) balance automatically.
//!
//! Thread count defaults to [`std::thread::available_parallelism`] and can
//! be pinned with the `BINPART_THREADS` environment variable (set
//! `BINPART_THREADS=1` for strictly sequential runs).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads [`par_map`] will use for `n` items.
pub fn thread_count(n: usize) -> usize {
    let hw = std::env::var("BINPART_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        });
    hw.min(n.max(1))
}

/// Applies `f` to every item of `items` in parallel, preserving order.
///
/// Panics in `f` are propagated to the caller (the scope re-raises them),
/// matching the behavior of a plain sequential loop.
///
/// # Example
///
/// ```
/// let squares = binpart_par::par_map(&[1u64, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let slot_ptr = SendPtr(slots.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let f = &f;
            let slot_ptr = &slot_ptr;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let value = f(&items[i]);
                // SAFETY: each index is claimed by exactly one worker (the
                // atomic fetch_add hands out distinct indices), so no two
                // threads write the same slot, and the Vec outlives the scope.
                unsafe { *slot_ptr.0.add(i) = Some(value) };
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled every claimed slot"))
        .collect()
}

struct SendPtr<U>(*mut Option<U>);
// SAFETY: the pointer is only dereferenced at indices uniquely claimed via
// the atomic cursor, within the lifetime of the owning Vec.
unsafe impl<U: Send> Sync for SendPtr<U> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order() {
        let input: Vec<u32> = (0..257).collect();
        let out = par_map(&input, |&x| x + 1);
        assert_eq!(out, (1..258).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_input_ok() {
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_env_falls_back_to_sequential() {
        // thread_count respects the cap regardless of item count.
        assert!(thread_count(1000) >= 1);
    }

    #[test]
    #[should_panic]
    fn worker_panic_propagates() {
        let input = [1u32, 2, 3];
        let _ = par_map(&input, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
