//! Virtex-II–class technology library: per-operator delay, LUT/FF cost, and
//! the gate-equivalent conversion used for reporting.
//!
//! The paper reports kernel area as "equivalent logic gates" out of Xilinx
//! ISE; we model the same quantity with per-operator costs calibrated to
//! era-typical numbers (carry-chain adders, MULT18X18 blocks, block RAM).

use binpart_cdfg::ir::{BinOp, Op, UnOp};

/// Functional-unit class an operation binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Adders/subtractors/comparators (carry chains).
    AddSub,
    /// Bitwise logic.
    Logic,
    /// Constant shifts (wiring only).
    ShiftConst,
    /// Variable shifts (barrel shifter).
    ShiftVar,
    /// Hard multiplier blocks.
    Mult,
    /// Iterative divider.
    Div,
    /// Memory port (block RAM or external).
    Mem,
    /// Zero-cost (copies, constants, phis resolved by wiring).
    Free,
}

/// Delay/area library.
#[derive(Debug, Clone, PartialEq)]
pub struct TechLibrary {
    /// Name for reports.
    pub name: String,
    /// Routed LUT delay, ns (logic + local routing).
    pub lut_delay_ns: f64,
    /// Flip-flop setup + clock-to-q, ns.
    pub ff_overhead_ns: f64,
    /// Gate equivalents per LUT.
    pub gates_per_lut: f64,
    /// Gate equivalents per flip-flop.
    pub gates_per_ff: f64,
    /// Gate equivalents per MULT18X18 block.
    pub gates_per_mult: f64,
    /// Gate equivalents per block-RAM block.
    pub gates_per_bram: f64,
    /// Block-RAM block capacity in bits.
    pub bram_block_bits: u64,
    /// Latency (cycles) of an iterative divide.
    pub div_cycles: u32,
    /// Latency (cycles) of an external (non-BRAM) memory access.
    pub ext_mem_cycles: u32,
}

impl TechLibrary {
    /// Virtex-II defaults.
    pub fn virtex2() -> TechLibrary {
        TechLibrary {
            name: "virtex2".into(),
            lut_delay_ns: 1.1,
            ff_overhead_ns: 1.2,
            gates_per_lut: 12.0,
            gates_per_ff: 8.0,
            gates_per_mult: 2500.0,
            gates_per_bram: 4000.0,
            bram_block_bits: 18 * 1024,
            div_cycles: 12,
            ext_mem_cycles: 4,
        }
    }

    /// Combinational delay of one op at `bits` width, in ns.
    pub fn delay_ns(&self, class: FuClass, bits: u8) -> f64 {
        let b = bits as f64;
        match class {
            FuClass::AddSub => 1.6 + 0.075 * b,
            FuClass::Logic => self.lut_delay_ns,
            FuClass::ShiftConst => 0.15,
            FuClass::ShiftVar => 2.4 + 0.02 * b,
            FuClass::Mult => {
                if bits <= 18 {
                    6.0
                } else {
                    9.5
                }
            }
            // sequential units: delay is per-cycle path, kept short
            FuClass::Div => 3.0,
            FuClass::Mem => 3.2,
            FuClass::Free => 0.0,
        }
    }

    /// LUT cost of one functional unit at `bits` width.
    pub fn luts(&self, class: FuClass, bits: u8) -> f64 {
        let b = bits as f64;
        match class {
            FuClass::AddSub => b,
            FuClass::Logic => b / 2.0,
            FuClass::ShiftConst => 0.0,
            FuClass::ShiftVar => b * 2.5,
            FuClass::Mult => 4.0, // glue around the hard block
            FuClass::Div => b * 4.0,
            FuClass::Mem => 6.0, // address/control glue
            FuClass::Free => 0.0,
        }
    }

    /// Extra non-LUT gate cost of a unit (hard blocks).
    pub fn hard_gates(&self, class: FuClass) -> f64 {
        match class {
            FuClass::Mult => self.gates_per_mult,
            _ => 0.0,
        }
    }

    /// Latency in cycles of a unit (1 = single cycle / chainable).
    pub fn cycles(&self, class: FuClass, mem_in_bram: bool) -> u32 {
        match class {
            FuClass::Div => self.div_cycles,
            FuClass::Mem if !mem_in_bram => self.ext_mem_cycles,
            _ => 1,
        }
    }

    /// Block-RAM blocks needed for `bytes` of kernel-local data.
    pub fn bram_blocks(&self, bytes: u64) -> u64 {
        (bytes * 8).div_ceil(self.bram_block_bits)
    }
}

/// Classifies an op for binding.
pub fn classify(op: &Op) -> FuClass {
    match op {
        Op::Bin { op, rhs, .. } => match op {
            BinOp::Add | BinOp::Sub | BinOp::Eq | BinOp::Ne | BinOp::LtS | BinOp::LtU
            | BinOp::LeS | BinOp::GtS | BinOp::GeS => FuClass::AddSub,
            BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Nor => FuClass::Logic,
            BinOp::Shl | BinOp::ShrL | BinOp::ShrA => {
                if rhs.as_const().is_some() {
                    FuClass::ShiftConst
                } else {
                    FuClass::ShiftVar
                }
            }
            BinOp::Mul | BinOp::MulHiS | BinOp::MulHiU => FuClass::Mult,
            BinOp::DivS | BinOp::DivU | BinOp::RemS | BinOp::RemU => FuClass::Div,
        },
        Op::Un { op, .. } => match op {
            UnOp::Neg => FuClass::AddSub,
            UnOp::Not => FuClass::Logic,
            // size casts are wiring
            _ => FuClass::Free,
        },
        Op::Load { .. } | Op::Store { .. } => FuClass::Mem,
        Op::Const { .. } | Op::Copy { .. } | Op::Phi { .. } => FuClass::Free,
        Op::Call { .. } => FuClass::Free, // calls are rejected before synthesis
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binpart_cdfg::ir::{Operand, VReg};

    #[test]
    fn classification() {
        let add = Op::Bin {
            op: BinOp::Add,
            dst: VReg(0),
            lhs: Operand::Const(1),
            rhs: Operand::Const(2),
        };
        assert_eq!(classify(&add), FuClass::AddSub);
        let shc = Op::Bin {
            op: BinOp::Shl,
            dst: VReg(0),
            lhs: Operand::Reg(VReg(1)),
            rhs: Operand::Const(2),
        };
        assert_eq!(classify(&shc), FuClass::ShiftConst);
        let shv = Op::Bin {
            op: BinOp::Shl,
            dst: VReg(0),
            lhs: Operand::Reg(VReg(1)),
            rhs: Operand::Reg(VReg(2)),
        };
        assert_eq!(classify(&shv), FuClass::ShiftVar);
    }

    #[test]
    fn narrow_ops_are_cheaper_and_faster() {
        let lib = TechLibrary::virtex2();
        assert!(lib.delay_ns(FuClass::AddSub, 8) < lib.delay_ns(FuClass::AddSub, 32));
        assert!(lib.luts(FuClass::AddSub, 8) < lib.luts(FuClass::AddSub, 32));
        assert!(lib.delay_ns(FuClass::Mult, 16) < lib.delay_ns(FuClass::Mult, 32));
    }

    #[test]
    fn bram_blocks_round_up() {
        let lib = TechLibrary::virtex2();
        assert_eq!(lib.bram_blocks(0), 0);
        assert_eq!(lib.bram_blocks(1), 1);
        assert_eq!(lib.bram_blocks(18 * 1024 / 8), 1);
        assert_eq!(lib.bram_blocks(18 * 1024 / 8 + 1), 2);
    }
}
