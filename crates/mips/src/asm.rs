//! A small label-based MIPS assembler used by the mini-C compiler's code
//! generator and by tests.
//!
//! The assembler is a builder: instructions are appended in order, branch and
//! jump targets are [`Label`]s that may be bound before or after use, and
//! [`Asm::finish`] resolves every fixup into encoded-ready [`Instr`]s.

use crate::{Instr, Reg};
use std::fmt;

/// A forward- or backward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(u32);

/// Error produced when resolving labels in [`Asm::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(Label),
    /// A branch target is too far away for a signed 16-bit word offset.
    BranchOutOfRange {
        /// Index of the branch instruction.
        at: usize,
        /// Instruction-index distance that did not fit.
        distance: i64,
    },
    /// A label was bound twice.
    RedefinedLabel(Label),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(l) => write!(f, "label L{} was never bound", l.0),
            AsmError::BranchOutOfRange { at, distance } => {
                write!(f, "branch at instruction {at} out of range ({distance} words)")
            }
            AsmError::RedefinedLabel(l) => write!(f, "label L{} bound twice", l.0),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Branch instruction whose 16-bit offset points at a label.
    Branch(Label),
    /// `j`/`jal` whose 26-bit field points at a label.
    Jump(Label),
    /// Fully resolved already.
    None,
}

/// Label-resolving instruction builder.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Default)]
pub struct Asm {
    items: Vec<(Instr, Pending)>,
    labels: Vec<Option<usize>>,
    text_base: u32,
}

impl Asm {
    /// Creates an assembler targeting the default text base.
    pub fn new() -> Asm {
        Asm {
            items: Vec::new(),
            labels: Vec::new(),
            text_base: crate::DEFAULT_TEXT_BASE,
        }
    }

    /// Creates an assembler whose first instruction will live at `text_base`.
    pub fn with_text_base(text_base: u32) -> Asm {
        Asm {
            text_base,
            ..Asm::new()
        }
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next instruction to be emitted.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (programming error in codegen).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label L{} bound twice", label.0);
        *slot = Some(self.items.len());
    }

    /// Returns the current instruction index (useful for size accounting).
    pub fn here(&self) -> usize {
        self.items.len()
    }

    /// Byte address of `label` once bound, given the configured text base.
    ///
    /// Returns `None` while unbound.
    pub fn label_addr(&self, label: Label) -> Option<u32> {
        self.labels[label.0 as usize].map(|idx| self.text_base + (idx as u32) * 4)
    }

    /// Appends a raw instruction (no fixup).
    pub fn raw(&mut self, instr: Instr) {
        self.items.push((instr, Pending::None));
    }

    /// Resolves all labels and returns the finished instruction list.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnboundLabel`] if any referenced label was never
    /// bound, or [`AsmError::BranchOutOfRange`] if a branch distance exceeds
    /// the signed 16-bit word offset.
    pub fn finish(self) -> Result<Vec<Instr>, AsmError> {
        let Asm {
            mut items,
            labels,
            text_base,
        } = self;
        for (idx, item) in items.iter_mut().enumerate() {
            let (instr, pending) = *item;
            match pending {
                Pending::None => {}
                Pending::Branch(l) => {
                    let target = labels[l.0 as usize].ok_or(AsmError::UnboundLabel(l))?;
                    let distance = target as i64 - (idx as i64 + 1);
                    let offset = i16::try_from(distance)
                        .map_err(|_| AsmError::BranchOutOfRange { at: idx, distance })?;
                    item.0 = with_branch_offset(instr, offset);
                }
                Pending::Jump(l) => {
                    let target = labels[l.0 as usize].ok_or(AsmError::UnboundLabel(l))?;
                    let addr = text_base + (target as u32) * 4;
                    let field = (addr >> 2) & 0x03ff_ffff;
                    item.0 = match instr {
                        Instr::J { .. } => Instr::J { target: field },
                        Instr::Jal { .. } => Instr::Jal { target: field },
                        other => other,
                    };
                }
            }
        }
        Ok(items.into_iter().map(|(i, _)| i).collect())
    }

    fn branch(&mut self, instr: Instr, label: Label) {
        self.items.push((instr, Pending::Branch(label)));
    }

    /// Fills branch delay slots by hoisting the instruction preceding a
    /// control transfer into the `nop` that follows it, when safe.
    ///
    /// An optimizing code generator calls this once after emitting all code
    /// (the `-O2` behaviour of era compilers). The candidate instruction `I`
    /// immediately before control transfer `B` (whose delay slot currently
    /// holds a `nop`) is moved when:
    ///
    /// * `I` is not itself a control transfer and not in a delay slot,
    /// * no label binds at `B` (so `I` belongs to the same basic block),
    /// * `I` writes no register `B` reads, and
    /// * `B` writes no register `I` reads or writes (e.g. `$ra` for `jal`).
    ///
    /// Returns the number of slots filled.
    pub fn fill_delay_slots(&mut self) -> usize {
        let mut filled = 0;
        let mut i = 1;
        while i + 1 < self.items.len() {
            let is_leader =
                |labels: &Vec<Option<usize>>, idx: usize| labels.contains(&Some(idx));
            let (b, _) = self.items[i];
            let slot_is_nop = self.items[i + 1].0.is_nop()
                && matches!(self.items[i + 1].1, Pending::None);
            if !b.is_control() || !slot_is_nop || is_leader(&self.labels, i) {
                i += 1;
                continue;
            }
            let (cand, cand_pending) = self.items[i - 1];
            let movable = !cand.is_control()
                && matches!(cand_pending, Pending::None)
                && !is_leader(&self.labels, i - 1)
                && (i < 2 || !self.items[i - 2].0.is_control())
                && cand.def().is_none_or(|d| !b.uses().contains(&d))
                && b.def().is_none_or(|d| {
                    !cand.uses().contains(&d) && cand.def() != Some(d)
                });
            if movable {
                // I B nop  =>  B I   (I lands in the delay slot)
                self.items[i + 1] = self.items[i - 1];
                self.items.remove(i - 1);
                // any label bound after i-1 shifts down by one
                for l in self.labels.iter_mut().flatten() {
                    if *l > i - 1 {
                        *l -= 1;
                    }
                }
                filled += 1;
                // position i-1 now holds the branch; continue after its slot
                i += 1;
            } else {
                i += 1;
            }
        }
        filled
    }
}

fn with_branch_offset(instr: Instr, offset: i16) -> Instr {
    use Instr::*;
    match instr {
        Beq { rs, rt, .. } => Beq { rs, rt, offset },
        Bne { rs, rt, .. } => Bne { rs, rt, offset },
        Blez { rs, .. } => Blez { rs, offset },
        Bgtz { rs, .. } => Bgtz { rs, offset },
        Bltz { rs, .. } => Bltz { rs, offset },
        Bgez { rs, .. } => Bgez { rs, offset },
        other => other,
    }
}

macro_rules! rrr {
    ($($(#[$m:meta])* $name:ident => $variant:ident),* $(,)?) => {
        $($(#[$m])*
        pub fn $name(&mut self, rd: Reg, rs: Reg, rt: Reg) {
            self.raw(Instr::$variant { rd, rs, rt });
        })*
    };
}

macro_rules! rri {
    ($($(#[$m:meta])* $name:ident => $variant:ident: $t:ty),* $(,)?) => {
        $($(#[$m])*
        pub fn $name(&mut self, rt: Reg, rs: Reg, imm: $t) {
            self.raw(Instr::$variant { rt, rs, imm });
        })*
    };
}

macro_rules! mem {
    ($($(#[$m:meta])* $name:ident => $variant:ident),* $(,)?) => {
        $($(#[$m])*
        pub fn $name(&mut self, rt: Reg, offset: i16, base: Reg) {
            self.raw(Instr::$variant { rt, base, offset });
        })*
    };
}

/// Instruction-emitting methods. Each appends one instruction.
impl Asm {
    rrr! {
        /// `addu rd, rs, rt`
        addu => Addu,
        /// `subu rd, rs, rt`
        subu => Subu,
        /// `and rd, rs, rt`
        and => And,
        /// `or rd, rs, rt`
        or => Or,
        /// `xor rd, rs, rt`
        xor => Xor,
        /// `nor rd, rs, rt`
        nor => Nor,
        /// `slt rd, rs, rt`
        slt => Slt,
        /// `sltu rd, rs, rt`
        sltu => Sltu,
    }

    rri! {
        /// `addiu rt, rs, imm`
        addiu => Addiu: i16,
        /// `slti rt, rs, imm`
        slti => Slti: i16,
        /// `sltiu rt, rs, imm`
        sltiu => Sltiu: i16,
        /// `andi rt, rs, imm`
        andi => Andi: u16,
        /// `ori rt, rs, imm`
        ori => Ori: u16,
        /// `xori rt, rs, imm`
        xori => Xori: u16,
    }

    mem! {
        /// `lb rt, offset(base)`
        lb => Lb,
        /// `lbu rt, offset(base)`
        lbu => Lbu,
        /// `lh rt, offset(base)`
        lh => Lh,
        /// `lhu rt, offset(base)`
        lhu => Lhu,
        /// `lw rt, offset(base)`
        lw => Lw,
        /// `sb rt, offset(base)`
        sb => Sb,
        /// `sh rt, offset(base)`
        sh => Sh,
        /// `sw rt, offset(base)`
        sw => Sw,
    }

    /// `sll rd, rt, shamt`
    pub fn sll(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.raw(Instr::Sll { rd, rt, shamt });
    }

    /// `srl rd, rt, shamt`
    pub fn srl(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.raw(Instr::Srl { rd, rt, shamt });
    }

    /// `sra rd, rt, shamt`
    pub fn sra(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.raw(Instr::Sra { rd, rt, shamt });
    }

    /// `sllv rd, rt, rs`
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.raw(Instr::Sllv { rd, rt, rs });
    }

    /// `srlv rd, rt, rs`
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.raw(Instr::Srlv { rd, rt, rs });
    }

    /// `srav rd, rt, rs`
    pub fn srav(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.raw(Instr::Srav { rd, rt, rs });
    }

    /// `lui rt, imm`
    pub fn lui(&mut self, rt: Reg, imm: u16) {
        self.raw(Instr::Lui { rt, imm });
    }

    /// `mult rs, rt`
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.raw(Instr::Mult { rs, rt });
    }

    /// `multu rs, rt`
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.raw(Instr::Multu { rs, rt });
    }

    /// `div rs, rt`
    pub fn div(&mut self, rs: Reg, rt: Reg) {
        self.raw(Instr::Div { rs, rt });
    }

    /// `divu rs, rt`
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.raw(Instr::Divu { rs, rt });
    }

    /// `mfhi rd`
    pub fn mfhi(&mut self, rd: Reg) {
        self.raw(Instr::Mfhi { rd });
    }

    /// `mflo rd`
    pub fn mflo(&mut self, rd: Reg) {
        self.raw(Instr::Mflo { rd });
    }

    /// `beq rs, rt, label`
    pub fn beq(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.branch(Instr::Beq { rs, rt, offset: 0 }, label);
    }

    /// `bne rs, rt, label`
    pub fn bne(&mut self, rs: Reg, rt: Reg, label: Label) {
        self.branch(Instr::Bne { rs, rt, offset: 0 }, label);
    }

    /// `blez rs, label`
    pub fn blez(&mut self, rs: Reg, label: Label) {
        self.branch(Instr::Blez { rs, offset: 0 }, label);
    }

    /// `bgtz rs, label`
    pub fn bgtz(&mut self, rs: Reg, label: Label) {
        self.branch(Instr::Bgtz { rs, offset: 0 }, label);
    }

    /// `bltz rs, label`
    pub fn bltz(&mut self, rs: Reg, label: Label) {
        self.branch(Instr::Bltz { rs, offset: 0 }, label);
    }

    /// `bgez rs, label`
    pub fn bgez(&mut self, rs: Reg, label: Label) {
        self.branch(Instr::Bgez { rs, offset: 0 }, label);
    }

    /// Unconditional branch: `beq $zero, $zero, label`.
    pub fn b(&mut self, label: Label) {
        self.beq(Reg::Zero, Reg::Zero, label);
    }

    /// `j label`
    pub fn j(&mut self, label: Label) {
        self.items.push((Instr::J { target: 0 }, Pending::Jump(label)));
    }

    /// `jal label`
    pub fn jal(&mut self, label: Label) {
        self.items
            .push((Instr::Jal { target: 0 }, Pending::Jump(label)));
    }

    /// `jr rs`
    pub fn jr(&mut self, rs: Reg) {
        self.raw(Instr::Jr { rs });
    }

    /// `jalr $ra, rs`
    pub fn jalr(&mut self, rs: Reg) {
        self.raw(Instr::Jalr { rd: Reg::Ra, rs });
    }

    /// `break code`
    pub fn brk(&mut self, code: u32) {
        self.raw(Instr::Break { code });
    }

    /// `nop`
    pub fn nop(&mut self) {
        self.raw(Instr::NOP);
    }

    /// Load-immediate pseudo-instruction.
    ///
    /// Expands to `addiu rt, $zero, imm` when the value fits 16 signed bits,
    /// `ori rt, $zero, imm` when it fits 16 unsigned bits, and `lui` + `ori`
    /// otherwise.
    pub fn li(&mut self, rt: Reg, value: i32) {
        if let Ok(imm) = i16::try_from(value) {
            self.addiu(rt, Reg::Zero, imm);
        } else if let Ok(imm) = u16::try_from(value) {
            self.ori(rt, Reg::Zero, imm);
        } else {
            let v = value as u32;
            self.lui(rt, (v >> 16) as u16);
            if v & 0xffff != 0 {
                self.ori(rt, rt, (v & 0xffff) as u16);
            }
        }
    }

    /// Load-address pseudo-instruction (`lui` + `ori` as needed).
    pub fn la(&mut self, rt: Reg, addr: u32) {
        self.li(rt, addr as i32);
    }

    /// Register move, emitted the way a compiler back-end would:
    /// `addiu rd, rs, 0`. This is exactly the instruction-set overhead the
    /// paper's constant-propagation decompiler pass removes.
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addiu(rd, rs, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        let top = a.new_label();
        let out = a.new_label();
        a.bind(top);
        a.addiu(Reg::T0, Reg::T0, -1);
        a.beq(Reg::T0, Reg::Zero, out); // forward: +2 -1 = 1
        a.nop();
        a.b(top); // backward
        a.nop();
        a.bind(out);
        a.jr(Reg::Ra);
        let text = a.finish().unwrap();
        assert_eq!(
            text[1],
            Instr::Beq {
                rs: Reg::T0,
                rt: Reg::Zero,
                offset: 3
            }
        );
        assert_eq!(
            text[3],
            Instr::Beq {
                rs: Reg::Zero,
                rt: Reg::Zero,
                offset: -4
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.b(l);
        let err = a.finish().unwrap_err();
        assert!(matches!(err, AsmError::UnboundLabel(_)));
        assert!(err.to_string().contains("never bound"));
    }

    #[test]
    fn jal_targets_absolute_address() {
        let mut a = Asm::with_text_base(0x0040_0000);
        let f = a.new_label();
        a.jal(f);
        a.nop();
        a.bind(f);
        a.jr(Reg::Ra);
        let text = a.finish().unwrap();
        assert_eq!(
            text[0],
            Instr::Jal {
                target: 0x0040_0008 >> 2
            }
        );
    }

    #[test]
    fn li_expansion_strategies() {
        let mut a = Asm::new();
        a.li(Reg::T0, 42);
        a.li(Reg::T1, -5);
        a.li(Reg::T2, 0xbeef); // fits u16, not i16
        a.li(Reg::T3, 0x1234_5678);
        a.li(Reg::T4, 0x7fff_0000); // low half zero: single lui
        let text = a.finish().unwrap();
        assert_eq!(
            text[0],
            Instr::Addiu {
                rt: Reg::T0,
                rs: Reg::Zero,
                imm: 42
            }
        );
        assert_eq!(
            text[2],
            Instr::Ori {
                rt: Reg::T2,
                rs: Reg::Zero,
                imm: 0xbeef
            }
        );
        assert_eq!(
            text[3],
            Instr::Lui {
                rt: Reg::T3,
                imm: 0x1234
            }
        );
        assert_eq!(
            text[4],
            Instr::Ori {
                rt: Reg::T3,
                rs: Reg::T3,
                imm: 0x5678
            }
        );
        assert_eq!(
            text[5],
            Instr::Lui {
                rt: Reg::T4,
                imm: 0x7fff
            }
        );
        assert_eq!(text.len(), 6);
    }

    #[test]
    fn label_addr_reports_bound_position() {
        let mut a = Asm::with_text_base(0x100);
        let l = a.new_label();
        a.nop();
        a.nop();
        a.bind(l);
        assert_eq!(a.label_addr(l), Some(0x108));
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn rebinding_panics() {
        let mut a = Asm::new();
        let l = a.new_label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn delay_slot_filling_moves_safe_instruction() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.ori(Reg::T2, Reg::Zero, 1); // block leader: must stay put
        a.addu(Reg::V0, Reg::V0, Reg::T0); // safe to move (branch reads T1)
        a.bne(Reg::T1, Reg::Zero, top);
        a.nop();
        a.jr(Reg::Ra);
        a.nop();
        assert_eq!(a.fill_delay_slots(), 1);
        let text = a.finish().unwrap();
        // ori stays the leader; bne moves up; addu lands in the slot
        assert!(matches!(text[0], Instr::Ori { .. }));
        assert!(matches!(text[1], Instr::Bne { .. }));
        assert!(matches!(text[2], Instr::Addu { .. }));
        // offset resolves from the branch's new position back to `top`
        assert_eq!(
            text[1],
            Instr::Bne {
                rs: Reg::T1,
                rt: Reg::Zero,
                offset: -2
            }
        );
    }

    #[test]
    fn delay_slot_not_filled_when_unsafe() {
        // candidate writes the branch's condition register
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.addiu(Reg::T1, Reg::T1, -1);
        a.bne(Reg::T1, Reg::Zero, top);
        a.nop();
        assert_eq!(a.fill_delay_slots(), 0);
        // candidate reads $ra defined by jal
        let mut a2 = Asm::new();
        let f = a2.new_label();
        a2.mov(Reg::T0, Reg::Ra);
        a2.jal(f);
        a2.nop();
        a2.bind(f);
        a2.jr(Reg::Ra);
        a2.nop();
        assert_eq!(a2.fill_delay_slots(), 0);
    }
}
