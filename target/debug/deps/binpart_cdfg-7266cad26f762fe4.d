/root/repo/target/debug/deps/binpart_cdfg-7266cad26f762fe4.d: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_cdfg-7266cad26f762fe4.rmeta: crates/cdfg/src/lib.rs crates/cdfg/src/cfg.rs crates/cdfg/src/dataflow.rs crates/cdfg/src/dom.rs crates/cdfg/src/ir.rs crates/cdfg/src/loops.rs crates/cdfg/src/ssa.rs crates/cdfg/src/structure.rs Cargo.toml

crates/cdfg/src/lib.rs:
crates/cdfg/src/cfg.rs:
crates/cdfg/src/dataflow.rs:
crates/cdfg/src/dom.rs:
crates/cdfg/src/ir.rs:
crates/cdfg/src/loops.rs:
crates/cdfg/src/ssa.rs:
crates/cdfg/src/structure.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
