//! TIR optimization passes, grouped into gcc-like `-O` levels.
//!
//! * `-O0`: nothing — every variable keeps its frame slot in codegen.
//! * `-O1`: constant folding, copy propagation, dead-code elimination,
//!   CFG simplification.
//! * `-O2`: `-O1` plus local common-subexpression elimination and strength
//!   reduction (multiply/divide by constants become shifts and adds — the
//!   artifact the decompiler's *strength promotion* undoes). Code
//!   generation additionally fills branch delay slots and emits jump tables.
//! * `-O3`: `-O2` plus AST-level loop unrolling and inlining (see
//!   [`crate::ast_opt`]).

use crate::tir::{BlockId, Opnd, TBinOp, TFunc, TInst, TTerm, TUnOp, VarId};
use std::collections::HashMap;

/// Compiler optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum OptLevel {
    /// No optimization; all variables in memory.
    O0,
    /// Basic scalar cleanups and register allocation.
    #[default]
    O1,
    /// `-O1` + CSE, strength reduction, delay-slot filling, jump tables.
    O2,
    /// `-O2` + loop unrolling and inlining.
    O3,
}

impl OptLevel {
    /// All levels, lowest first.
    pub const ALL: [OptLevel; 4] = [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// Conventional `-Ox` spelling.
    pub fn flag(self) -> &'static str {
        match self {
            OptLevel::O0 => "-O0",
            OptLevel::O1 => "-O1",
            OptLevel::O2 => "-O2",
            OptLevel::O3 => "-O3",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.flag())
    }
}

/// Optimizes `f` in place at `level`.
pub fn optimize(f: &mut TFunc, level: OptLevel) {
    if level == OptLevel::O0 {
        return;
    }
    for _ in 0..3 {
        let mut changed = false;
        changed |= const_fold(f);
        changed |= copy_propagate(f);
        changed |= dce(f);
        changed |= simplify_cfg(f);
        if level >= OptLevel::O2 {
            changed |= local_cse(f);
            changed |= strength_reduce(f);
        }
        if !changed {
            break;
        }
    }
}

/// Folds constant expressions and algebraic identities. Returns `true` on
/// change.
pub fn const_fold(f: &mut TFunc) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        for inst in &mut b.insts {
            let new = match inst {
                TInst::Bin { op, dst, a, b } => match (*a, *b) {
                    (Opnd::Const(x), Opnd::Const(y)) => {
                        op.fold(x, y).map(|v| TInst::Copy {
                            dst: *dst,
                            src: Opnd::Const(v),
                        })
                    }
                    (x, Opnd::Const(0)) if matches!(op, TBinOp::Add | TBinOp::Sub | TBinOp::Or | TBinOp::Xor | TBinOp::Shl | TBinOp::ShrA | TBinOp::ShrL) => {
                        Some(TInst::Copy { dst: *dst, src: x })
                    }
                    (Opnd::Const(0), y) if matches!(op, TBinOp::Add | TBinOp::Or | TBinOp::Xor) => {
                        Some(TInst::Copy { dst: *dst, src: y })
                    }
                    (x, Opnd::Const(1)) if matches!(op, TBinOp::Mul) => {
                        Some(TInst::Copy { dst: *dst, src: x })
                    }
                    (Opnd::Const(1), y) if matches!(op, TBinOp::Mul) => {
                        Some(TInst::Copy { dst: *dst, src: y })
                    }
                    (_, Opnd::Const(0)) | (Opnd::Const(0), _) if matches!(op, TBinOp::Mul | TBinOp::And) => {
                        Some(TInst::Copy {
                            dst: *dst,
                            src: Opnd::Const(0),
                        })
                    }
                    _ => None,
                },
                TInst::Un { op, dst, a: Opnd::Const(c) } => Some(TInst::Copy {
                    dst: *dst,
                    src: Opnd::Const(op.fold(*c)),
                }),
                _ => None,
            };
            if let Some(n) = new {
                *inst = n;
                changed = true;
            }
        }
        // Fold constant branches.
        match &b.term {
            TTerm::Br { cond: Opnd::Const(c), t, f: fl } => {
                b.term = TTerm::Jump(if *c != 0 { *t } else { *fl });
                changed = true;
            }
            TTerm::Switch { val: Opnd::Const(c), cases, default } => {
                let target = cases
                    .iter()
                    .find(|(l, _)| l == c)
                    .map(|(_, b)| *b)
                    .unwrap_or(*default);
                b.term = TTerm::Jump(target);
                changed = true;
            }
            _ => {}
        }
    }
    changed
}

/// Propagates single-def copies (`x = y` / `x = const`). Returns `true` on
/// change.
pub fn copy_propagate(f: &mut TFunc) -> bool {
    // Count static defs per var.
    let mut def_count: HashMap<VarId, usize> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.dst() {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
    }
    // Single-def copies of constants or single-def variables.
    let mut value: HashMap<VarId, Opnd> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let TInst::Copy { dst, src } = i {
                if def_count.get(dst) == Some(&1) {
                    let ok = match src {
                        Opnd::Const(_) => true,
                        Opnd::Var(s) => def_count.get(s) == Some(&1),
                    };
                    if ok {
                        value.insert(*dst, *src);
                    }
                }
            }
        }
    }
    if value.is_empty() {
        return false;
    }
    // Resolve chains.
    let resolve = |mut o: Opnd| -> Opnd {
        for _ in 0..8 {
            match o {
                Opnd::Var(v) => match value.get(&v) {
                    Some(&n) if n != o => o = n,
                    _ => break,
                },
                Opnd::Const(_) => break,
            }
        }
        o
    };
    let mut changed = false;
    for b in &mut f.blocks {
        for i in &mut b.insts {
            i.for_each_use_mut(|o| {
                let n = resolve(*o);
                if n != *o {
                    *o = n;
                    changed = true;
                }
            });
        }
        b.term.for_each_use_mut(|o| {
            let n = resolve(*o);
            if n != *o {
                *o = n;
                changed = true;
            }
        });
    }
    changed
}

/// Removes instructions whose results are never used. Returns `true` on
/// change.
pub fn dce(f: &mut TFunc) -> bool {
    let mut used: HashMap<VarId, bool> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            i.for_each_use(|o| {
                if let Opnd::Var(v) = o {
                    used.insert(*v, true);
                }
            });
            // frame bases referenced by AddrFrame must stay allocated, but
            // the *instruction* can still die if its dst is unused.
        }
        b.term.for_each_use(|o| {
            if let Opnd::Var(v) = o {
                used.insert(*v, true);
            }
        });
    }
    let mut changed = false;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| {
            if i.has_side_effects() {
                return true;
            }
            match i.dst() {
                Some(d) => used.get(&d).copied().unwrap_or(false),
                None => true,
            }
        });
        changed |= b.insts.len() != before;
    }
    changed
}

/// Removes unreachable blocks and threads trivial jumps. Returns `true` on
/// change.
pub fn simplify_cfg(f: &mut TFunc) -> bool {
    let n = f.blocks.len();
    // Thread jumps through empty blocks.
    let mut forward: Vec<Option<BlockId>> = vec![None; n];
    for (i, b) in f.blocks.iter().enumerate() {
        if b.insts.is_empty() {
            if let TTerm::Jump(t) = b.term {
                if t.index() != i {
                    forward[i] = Some(t);
                }
            }
        }
    }
    let resolve = |mut b: BlockId| -> BlockId {
        for _ in 0..n {
            match forward[b.index()] {
                Some(t) if t != b => b = t,
                _ => break,
            }
        }
        b
    };
    let mut changed = false;
    for b in &mut f.blocks {
        let mut term = b.term.clone();
        let map = |x: &mut BlockId, changed: &mut bool| {
            let r = resolve(*x);
            if r != *x {
                *x = r;
                *changed = true;
            }
        };
        match &mut term {
            TTerm::Jump(t) => map(t, &mut changed),
            TTerm::Br { t, f, .. } => {
                map(t, &mut changed);
                map(f, &mut changed);
            }
            TTerm::Switch { cases, default, .. } => {
                for (_, t) in cases {
                    map(t, &mut changed);
                }
                map(default, &mut changed);
            }
            TTerm::Ret(_) => {}
        }
        // Degenerate branch.
        if let TTerm::Br { t, f: fl, cond: _ } = &term {
            if t == fl {
                term = TTerm::Jump(*t);
                changed = true;
            }
        }
        b.term = term;
    }
    changed
}

/// Local value numbering within each block. Returns `true` on change.
pub fn local_cse(f: &mut TFunc) -> bool {
    #[derive(PartialEq, Eq, Hash, Clone)]
    enum Key {
        Bin(TBinOp, Opnd, Opnd),
        Un(TUnOp, Opnd),
        AddrGlobal(usize, i64),
        AddrFrame(VarId, i64),
        Load(Opnd, crate::tir::MemW, bool),
    }
    let mut changed = false;
    // vars redefined later in the block would invalidate; only CSE over
    // operands whose vars are not redefined between def and reuse. For
    // simplicity require operand vars to be single-def in the function.
    let mut def_count: HashMap<VarId, usize> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.dst() {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
    }
    let single = |o: &Opnd, def_count: &HashMap<VarId, usize>| match o {
        Opnd::Const(_) => true,
        Opnd::Var(v) => def_count.get(v) == Some(&1),
    };
    for b in &mut f.blocks {
        let mut table: HashMap<Key, VarId> = HashMap::new();
        for inst in &mut b.insts {
            // Calls and stores invalidate memory.
            if matches!(inst, TInst::Call { .. } | TInst::Store { .. }) {
                table.retain(|k, _| !matches!(k, Key::Load(..)));
                continue;
            }
            let key = match inst {
                TInst::Bin { op, a, b, .. }
                    if single(a, &def_count) && single(b, &def_count) =>
                {
                    let (a2, b2) = if op.is_commutative() && format!("{a:?}") > format!("{b:?}") {
                        (*b, *a)
                    } else {
                        (*a, *b)
                    };
                    Some(Key::Bin(*op, a2, b2))
                }
                TInst::Un { op, a, .. } if single(a, &def_count) => Some(Key::Un(*op, *a)),
                TInst::AddrGlobal { global, offset, .. } => {
                    Some(Key::AddrGlobal(*global, *offset))
                }
                TInst::AddrFrame { var, offset, .. } => Some(Key::AddrFrame(*var, *offset)),
                TInst::Load { addr, width, signed, .. } if single(addr, &def_count) => {
                    Some(Key::Load(*addr, *width, *signed))
                }
                _ => None,
            };
            let (Some(key), Some(dst)) = (key, inst.dst()) else {
                continue;
            };
            // dst must itself be single-def for the replacement to be safe.
            if def_count.get(&dst) != Some(&1) {
                continue;
            }
            match table.get(&key) {
                Some(&prev) => {
                    *inst = TInst::Copy {
                        dst,
                        src: Opnd::Var(prev),
                    };
                    changed = true;
                }
                None => {
                    table.insert(key, dst);
                }
            }
        }
    }
    changed
}

/// Rewrites multiplies/divides by constants into shift/add sequences — the
/// strength reduction the decompiler's *strength promotion* later reverses.
/// Returns `true` on change.
pub fn strength_reduce(f: &mut TFunc) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let mut k = 0;
        while k < f.blocks[bi].insts.len() {
            let inst = f.blocks[bi].insts[k].clone();
            let replaced: Option<Vec<TInst>> = match inst {
                TInst::Bin {
                    op: TBinOp::Mul,
                    dst,
                    a,
                    b: Opnd::Const(c),
                }
                | TInst::Bin {
                    op: TBinOp::Mul,
                    dst,
                    a: Opnd::Const(c),
                    b: a,
                } => reduce_mul(f, dst, a, c),
                TInst::Bin {
                    op: TBinOp::DivU,
                    dst,
                    a,
                    b: Opnd::Const(c),
                } if c > 0 && (c as u64).is_power_of_two() => Some(vec![TInst::Bin {
                    op: TBinOp::ShrL,
                    dst,
                    a,
                    b: Opnd::Const(c.trailing_zeros() as i64),
                }]),
                TInst::Bin {
                    op: TBinOp::RemU,
                    dst,
                    a,
                    b: Opnd::Const(c),
                } if c > 0 && (c as u64).is_power_of_two() => Some(vec![TInst::Bin {
                    op: TBinOp::And,
                    dst,
                    a,
                    b: Opnd::Const(c - 1),
                }]),
                TInst::Bin {
                    op: TBinOp::DivS,
                    dst,
                    a,
                    b: Opnd::Const(c),
                } if c > 1 && (c as u64).is_power_of_two() => {
                    // gcc's signed power-of-two division sequence:
                    //   t1 = a >> 31; t2 = t1 >>> (32-k); t3 = a + t2; d = t3 >> k
                    let kk = c.trailing_zeros() as i64;
                    let t1 = f.new_temp(crate::ast::Ty::Int);
                    let t2 = f.new_temp(crate::ast::Ty::Int);
                    let t3 = f.new_temp(crate::ast::Ty::Int);
                    Some(vec![
                        TInst::Bin {
                            op: TBinOp::ShrA,
                            dst: t1,
                            a,
                            b: Opnd::Const(31),
                        },
                        TInst::Bin {
                            op: TBinOp::ShrL,
                            dst: t2,
                            a: Opnd::Var(t1),
                            b: Opnd::Const(32 - kk),
                        },
                        TInst::Bin {
                            op: TBinOp::Add,
                            dst: t3,
                            a,
                            b: Opnd::Var(t2),
                        },
                        TInst::Bin {
                            op: TBinOp::ShrA,
                            dst,
                            a: Opnd::Var(t3),
                            b: Opnd::Const(kk),
                        },
                    ])
                }
                _ => None,
            };
            if let Some(seq) = replaced {
                let n = seq.len();
                f.blocks[bi].insts.splice(k..=k, seq);
                k += n;
                changed = true;
            } else {
                k += 1;
            }
        }
    }
    changed
}

/// Shift/add expansion for `dst = a * c` when profitable.
fn reduce_mul(f: &mut TFunc, dst: VarId, a: Opnd, c: i64) -> Option<Vec<TInst>> {
    if c <= 0 {
        return None;
    }
    let cu = c as u64;
    if cu.is_power_of_two() {
        return Some(vec![TInst::Bin {
            op: TBinOp::Shl,
            dst,
            a,
            b: Opnd::Const(cu.trailing_zeros() as i64),
        }]);
    }
    // Two set bits: (a << k1) + (a << k2)
    if cu.count_ones() == 2 {
        let k1 = 63 - cu.leading_zeros() as i64;
        let k2 = cu.trailing_zeros() as i64;
        let t1 = f.new_temp(crate::ast::Ty::Int);
        let t2 = f.new_temp(crate::ast::Ty::Int);
        return Some(vec![
            TInst::Bin {
                op: TBinOp::Shl,
                dst: t1,
                a,
                b: Opnd::Const(k1),
            },
            TInst::Bin {
                op: TBinOp::Shl,
                dst: t2,
                a,
                b: Opnd::Const(k2),
            },
            TInst::Bin {
                op: TBinOp::Add,
                dst,
                a: Opnd::Var(t1),
                b: Opnd::Var(t2),
            },
        ]);
    }
    // 2^k - 1 pattern: (a << k) - a
    if (cu + 1).is_power_of_two() {
        let k = (cu + 1).trailing_zeros() as i64;
        let t1 = f.new_temp(crate::ast::Ty::Int);
        return Some(vec![
            TInst::Bin {
                op: TBinOp::Shl,
                dst: t1,
                a,
                b: Opnd::Const(k),
            },
            TInst::Bin {
                op: TBinOp::Sub,
                dst,
                a: Opnd::Var(t1),
                b: a,
            },
        ]);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use crate::parser::parse;

    fn tir(src: &str) -> TFunc {
        lower(&parse(src).unwrap()).unwrap().funcs.remove(0)
    }

    fn count_bin(f: &TFunc, op: TBinOp) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, TInst::Bin { op: o, .. } if *o == op))
            .count()
    }

    #[test]
    fn const_fold_collapses_arithmetic() {
        let mut f = tir("int f(void){ return (3 + 4) * 2; }");
        // lowering already folds consts; ensure a runtime identity folds too
        let mut g = tir("int f(int x){ return x + 0; }");
        optimize(&mut f, OptLevel::O1);
        optimize(&mut g, OptLevel::O1);
        assert_eq!(count_bin(&g, TBinOp::Add), 0, "{g}");
    }

    #[test]
    fn dce_removes_dead_temps() {
        let mut f = tir("int f(int x){ int dead = x * 99; return x; }");
        optimize(&mut f, OptLevel::O1);
        assert_eq!(count_bin(&f, TBinOp::Mul), 0, "{f}");
    }

    #[test]
    fn strength_reduce_pow2_mul() {
        let mut f = tir("int f(int x){ return x * 8; }");
        optimize(&mut f, OptLevel::O2);
        assert_eq!(count_bin(&f, TBinOp::Mul), 0, "{f}");
        assert_eq!(count_bin(&f, TBinOp::Shl), 1, "{f}");
    }

    #[test]
    fn strength_reduce_two_bit_mul() {
        let mut f = tir("int f(int x){ return x * 10; }"); // 8 + 2
        optimize(&mut f, OptLevel::O2);
        assert_eq!(count_bin(&f, TBinOp::Mul), 0, "{f}");
        assert_eq!(count_bin(&f, TBinOp::Shl), 2, "{f}");
        assert!(count_bin(&f, TBinOp::Add) >= 1, "{f}");
    }

    #[test]
    fn strength_reduce_signed_div() {
        let mut f = tir("int f(int x){ return x / 4; }");
        optimize(&mut f, OptLevel::O2);
        assert_eq!(count_bin(&f, TBinOp::DivS), 0, "{f}");
        assert!(count_bin(&f, TBinOp::ShrA) >= 2, "{f}");
    }

    #[test]
    fn o1_does_not_strength_reduce() {
        let mut f = tir("int f(int x){ return x * 8; }");
        optimize(&mut f, OptLevel::O1);
        assert_eq!(count_bin(&f, TBinOp::Mul), 1, "{f}");
    }

    #[test]
    fn unsigned_rem_becomes_mask() {
        let mut f = tir("unsigned int f(unsigned int x){ return x % 16; }");
        optimize(&mut f, OptLevel::O2);
        assert_eq!(count_bin(&f, TBinOp::RemU), 0, "{f}");
        assert_eq!(count_bin(&f, TBinOp::And), 1, "{f}");
    }

    #[test]
    fn cse_merges_repeated_loads_of_same_address() {
        let mut f = tir("int g; int f(void){ return g + g; }");
        let loads_before = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, TInst::Load { .. }))
            .count();
        optimize(&mut f, OptLevel::O2);
        let loads_after = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, TInst::Load { .. }))
            .count();
        assert!(loads_after <= loads_before, "{f}");
    }

    #[test]
    fn constant_branch_folds() {
        let mut f = tir("int f(void){ if (1) return 5; return 6; }");
        optimize(&mut f, OptLevel::O1);
        let brs = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, TTerm::Br { .. }))
            .count();
        assert_eq!(brs, 0, "{f}");
    }
}
