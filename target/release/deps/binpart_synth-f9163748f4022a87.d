/root/repo/target/release/deps/binpart_synth-f9163748f4022a87.d: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

/root/repo/target/release/deps/binpart_synth-f9163748f4022a87: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

crates/synth/src/lib.rs:
crates/synth/src/schedule.rs:
crates/synth/src/tech.rs:
crates/synth/src/vhdl.rs:
