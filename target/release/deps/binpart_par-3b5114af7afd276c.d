/root/repo/target/release/deps/binpart_par-3b5114af7afd276c.d: crates/par/src/lib.rs

/root/repo/target/release/deps/binpart_par-3b5114af7afd276c: crates/par/src/lib.rs

crates/par/src/lib.rs:
