//! AST-level optimizations applied before lowering at `-O3`: small-function
//! inlining and loop unrolling.
//!
//! Loop unrolling is the transformation the paper's *loop rerolling*
//! decompiler pass has to undo: a counted `for` loop whose trip count is a
//! known constant divisible by the unroll factor gets its body replicated
//! with the induction step between copies, exactly the form early compilers
//! emitted.

use crate::ast::{Expr, FuncDecl, Program, Stmt};
use crate::parser::eval_const;

/// Maximum body statements for a function to be inline-eligible.
const INLINE_MAX_STMTS: usize = 1;
/// Unroll factor attempted first.
const UNROLL_FACTOR: u64 = 4;
/// Maximum statements in a loop body eligible for unrolling.
const UNROLL_MAX_BODY: usize = 6;

/// Statistics about what the AST optimizer did (used by tests/reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AstOptStats {
    /// Call sites replaced by bodies.
    pub inlined_calls: usize,
    /// Loops unrolled.
    pub unrolled_loops: usize,
}

/// Runs `-O3` AST transformations in place.
pub fn optimize_ast(prog: &mut Program) -> AstOptStats {
    let mut stats = AstOptStats::default();
    inline_small(prog, &mut stats);
    for f in &mut prog.funcs {
        let mut body = std::mem::take(&mut f.body);
        for s in &mut body {
            unroll_stmt(s, &mut stats);
        }
        f.body = body;
    }
    stats
}

// ---- inlining ----

/// A function is inlinable when its body is a single `return expr;` whose
/// expression has no side effects (no calls / assignments / increments).
fn inline_candidate(f: &FuncDecl) -> Option<&Expr> {
    if f.body.len() != INLINE_MAX_STMTS {
        return None;
    }
    match &f.body[0] {
        Stmt::Return(Some(e)) if expr_is_pure(e) => Some(e),
        _ => None,
    }
}

fn expr_is_pure(e: &Expr) -> bool {
    match e {
        Expr::Num(_) | Expr::Ident(_) => true,
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Deref(expr) => {
            expr_is_pure(expr)
        }
        Expr::AddrOf(expr) => expr_is_pure(expr),
        Expr::Binary { lhs, rhs, .. } => expr_is_pure(lhs) && expr_is_pure(rhs),
        Expr::Index { base, index } => expr_is_pure(base) && expr_is_pure(index),
        Expr::Ternary { cond, then, els } => {
            expr_is_pure(cond) && expr_is_pure(then) && expr_is_pure(els)
        }
        Expr::Call { .. }
        | Expr::Assign { .. }
        | Expr::PreInc { .. }
        | Expr::PostInc { .. } => false,
    }
}

fn substitute(e: &Expr, params: &[(String, crate::ast::Ty)], args: &[Expr]) -> Expr {
    match e {
        Expr::Ident(n) => {
            for (k, (p, _)) in params.iter().enumerate() {
                if p == n {
                    return args[k].clone();
                }
            }
            e.clone()
        }
        Expr::Num(_) => e.clone(),
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(substitute(expr, params, args)),
        },
        Expr::Cast { ty, expr } => Expr::Cast {
            ty: ty.clone(),
            expr: Box::new(substitute(expr, params, args)),
        },
        Expr::Deref(x) => Expr::Deref(Box::new(substitute(x, params, args))),
        Expr::AddrOf(x) => Expr::AddrOf(Box::new(substitute(x, params, args))),
        Expr::Binary { op, lhs, rhs } => Expr::Binary {
            op: *op,
            lhs: Box::new(substitute(lhs, params, args)),
            rhs: Box::new(substitute(rhs, params, args)),
        },
        Expr::Index { base, index } => Expr::Index {
            base: Box::new(substitute(base, params, args)),
            index: Box::new(substitute(index, params, args)),
        },
        Expr::Ternary { cond, then, els } => Expr::Ternary {
            cond: Box::new(substitute(cond, params, args)),
            then: Box::new(substitute(then, params, args)),
            els: Box::new(substitute(els, params, args)),
        },
        other => other.clone(),
    }
}

/// (name, params, body expression) of a function small enough to inline.
type InlineCandidate = (String, Vec<(String, crate::ast::Ty)>, Expr);

fn inline_small(prog: &mut Program, stats: &mut AstOptStats) {
    let candidates: Vec<InlineCandidate> = prog
        .funcs
        .iter()
        .filter_map(|f| inline_candidate(f).map(|e| (f.name.clone(), f.params.clone(), e.clone())))
        .collect();
    if candidates.is_empty() {
        return;
    }
    let find = |name: &str| candidates.iter().find(|(n, _, _)| n == name);
    for f in &mut prog.funcs {
        let name = f.name.clone();
        for s in &mut f.body {
            inline_stmt(s, &name, &find, stats);
        }
    }
}

type Candidate = (String, Vec<(String, crate::ast::Ty)>, Expr);

fn inline_stmt<'a>(
    s: &mut Stmt,
    self_name: &str,
    find: &impl Fn(&str) -> Option<&'a Candidate>,
    stats: &mut AstOptStats,
) {
    match s {
        Stmt::Decl { init: Some(e), .. } | Stmt::Expr(e) | Stmt::Return(Some(e)) => {
            inline_expr(e, self_name, find, stats)
        }
        Stmt::If { cond, then, els } => {
            inline_expr(cond, self_name, find, stats);
            inline_stmt(then, self_name, find, stats);
            if let Some(e) = els {
                inline_stmt(e, self_name, find, stats);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            inline_expr(cond, self_name, find, stats);
            inline_stmt(body, self_name, find, stats);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                inline_stmt(i, self_name, find, stats);
            }
            if let Some(c) = cond {
                inline_expr(c, self_name, find, stats);
            }
            if let Some(st) = step {
                inline_expr(st, self_name, find, stats);
            }
            inline_stmt(body, self_name, find, stats);
        }
        Stmt::Switch {
            scrutinee,
            cases,
            default,
        } => {
            inline_expr(scrutinee, self_name, find, stats);
            for (_, body) in cases {
                for s in body {
                    inline_stmt(s, self_name, find, stats);
                }
            }
            if let Some(d) = default {
                for s in d {
                    inline_stmt(s, self_name, find, stats);
                }
            }
        }
        Stmt::Block(v) => {
            for s in v {
                inline_stmt(s, self_name, find, stats);
            }
        }
        _ => {}
    }
}

fn inline_expr<'a>(
    e: &mut Expr,
    self_name: &str,
    find: &impl Fn(&str) -> Option<&'a Candidate>,
    stats: &mut AstOptStats,
) {
    // Recurse first so nested calls inline bottom-up.
    match e {
        Expr::Unary { expr, .. }
        | Expr::Cast { expr, .. }
        | Expr::Deref(expr)
        | Expr::AddrOf(expr)
        | Expr::PreInc { expr, .. }
        | Expr::PostInc { expr, .. } => inline_expr(expr, self_name, find, stats),
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            inline_expr(lhs, self_name, find, stats);
            inline_expr(rhs, self_name, find, stats);
        }
        Expr::Index { base, index } => {
            inline_expr(base, self_name, find, stats);
            inline_expr(index, self_name, find, stats);
        }
        Expr::Ternary { cond, then, els } => {
            inline_expr(cond, self_name, find, stats);
            inline_expr(then, self_name, find, stats);
            inline_expr(els, self_name, find, stats);
        }
        Expr::Call { name, args } => {
            for a in args.iter_mut() {
                inline_expr(a, self_name, find, stats);
            }
            if name != self_name {
                if let Some((_, params, body)) = find(name) {
                    // Arguments must be pure to substitute without temps.
                    if args.iter().all(expr_is_pure) && params.len() == args.len() {
                        *e = substitute(body, params, args);
                        stats.inlined_calls += 1;
                    }
                }
            }
        }
        Expr::Num(_) | Expr::Ident(_) => {}
    }
}

// ---- unrolling ----

fn unroll_stmt(s: &mut Stmt, stats: &mut AstOptStats) {
    match s {
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            unroll_stmt(body, stats);
            if let Some(factor) = unrollable(init.as_deref(), cond.as_ref(), step.as_ref(), body) {
                let step_expr = step.clone().expect("checked");
                let mut replicas: Vec<Stmt> = Vec::new();
                for k in 0..factor {
                    replicas.push((**body).clone());
                    if k + 1 < factor {
                        replicas.push(Stmt::Expr(step_expr.clone()));
                    }
                }
                **body = Stmt::Block(replicas);
                stats.unrolled_loops += 1;
            }
        }
        Stmt::If { then, els, .. } => {
            unroll_stmt(then, stats);
            if let Some(e) = els {
                unroll_stmt(e, stats);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => unroll_stmt(body, stats),
        Stmt::Block(v) => v.iter_mut().for_each(|s| unroll_stmt(s, stats)),
        Stmt::Switch { cases, default, .. } => {
            for (_, body) in cases {
                body.iter_mut().for_each(|s| unroll_stmt(s, stats));
            }
            if let Some(d) = default {
                d.iter_mut().for_each(|s| unroll_stmt(s, stats));
            }
        }
        _ => {}
    }
}

/// Checks the canonical counted-loop shape `for (i = C0; i < CN; i += S)`
/// (or `i++`/`<=`), body small, body not writing `i`, trip count constant
/// and divisible by the factor. Returns the chosen unroll factor.
fn unrollable(
    init: Option<&Stmt>,
    cond: Option<&Expr>,
    step: Option<&Expr>,
    body: &Stmt,
) -> Option<u64> {
    use crate::ast::BinOp as B;
    let iv;
    let c0;
    match init? {
        Stmt::Expr(Expr::Assign {
            op: None,
            lhs,
            rhs,
        }) => {
            let Expr::Ident(n) = &**lhs else { return None };
            iv = n.clone();
            c0 = eval_const(rhs)?;
        }
        Stmt::Decl {
            name,
            init: Some(rhs),
            ..
        } => {
            iv = name.clone();
            c0 = eval_const(rhs)?;
        }
        _ => return None,
    }
    let (op, bound) = match cond? {
        Expr::Binary { op, lhs, rhs } => {
            let Expr::Ident(n) = &**lhs else { return None };
            if *n != iv {
                return None;
            }
            (*op, eval_const(rhs)?)
        }
        _ => return None,
    };
    let s = match step? {
        Expr::PostInc { inc: true, expr } | Expr::PreInc { inc: true, expr } => {
            let Expr::Ident(n) = &**expr else { return None };
            if *n != iv {
                return None;
            }
            1
        }
        Expr::Assign {
            op: Some(B::Add),
            lhs,
            rhs,
        } => {
            let Expr::Ident(n) = &**lhs else { return None };
            if *n != iv {
                return None;
            }
            eval_const(rhs)?
        }
        _ => return None,
    };
    if s <= 0 {
        return None;
    }
    let trip = match op {
        B::Lt => (bound - c0 + s - 1) / s,
        B::Le => (bound - c0) / s + 1,
        _ => return None,
    };
    if trip <= 0 {
        return None;
    }
    let trip = trip as u64;
    // body must be small and must not write the induction variable
    if stmt_count(body) > UNROLL_MAX_BODY || writes_var(body, &iv) || has_jump(body) {
        return None;
    }
    [UNROLL_FACTOR, 2].into_iter().find(|&factor| trip.is_multiple_of(factor) && trip >= factor)
}

fn stmt_count(s: &Stmt) -> usize {
    match s {
        Stmt::Block(v) => v.iter().map(stmt_count).sum(),
        Stmt::If { then, els, .. } => {
            1 + stmt_count(then) + els.as_ref().map_or(0, |e| stmt_count(e))
        }
        _ => 1,
    }
}

fn has_jump(s: &Stmt) -> bool {
    match s {
        Stmt::Break | Stmt::Continue | Stmt::Return(_) => true,
        Stmt::Block(v) => v.iter().any(has_jump),
        Stmt::If { then, els, .. } => {
            has_jump(then) || els.as_ref().is_some_and(|e| has_jump(e))
        }
        // nested loops contain their own break/continue; conservative: reject
        Stmt::While { .. } | Stmt::DoWhile { .. } | Stmt::For { .. } | Stmt::Switch { .. } => true,
        _ => false,
    }
}

fn writes_var(s: &Stmt, name: &str) -> bool {
    fn expr_writes(e: &Expr, name: &str) -> bool {
        match e {
            Expr::Assign { lhs, rhs, .. } => {
                matches!(&**lhs, Expr::Ident(n) if n == name)
                    || expr_writes(lhs, name)
                    || expr_writes(rhs, name)
            }
            Expr::PreInc { expr, .. } | Expr::PostInc { expr, .. } => {
                matches!(&**expr, Expr::Ident(n) if n == name) || expr_writes(expr, name)
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Deref(expr)
            | Expr::AddrOf(expr) => expr_writes(expr, name),
            Expr::Binary { lhs, rhs, .. } => expr_writes(lhs, name) || expr_writes(rhs, name),
            Expr::Index { base, index } => expr_writes(base, name) || expr_writes(index, name),
            Expr::Call { args, .. } => args.iter().any(|a| expr_writes(a, name)),
            Expr::Ternary { cond, then, els } => {
                expr_writes(cond, name) || expr_writes(then, name) || expr_writes(els, name)
            }
            _ => false,
        }
    }
    match s {
        Stmt::Expr(e) | Stmt::Return(Some(e)) => expr_writes(e, name),
        Stmt::Decl { init: Some(e), .. } => expr_writes(e, name),
        Stmt::Block(v) => v.iter().any(|s| writes_var(s, name)),
        Stmt::If { cond, then, els } => {
            expr_writes(cond, name)
                || writes_var(then, name)
                || els.as_ref().is_some_and(|e| writes_var(e, name))
        }
        _ => true, // conservative for loops/switch inside
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn unrolls_counted_loop() {
        let mut p = parse(
            "int a[16]; int f(void){ int i; int s=0; for(i=0;i<16;i++){ s += a[i]; } return s; }",
        )
        .unwrap();
        let stats = optimize_ast(&mut p);
        assert_eq!(stats.unrolled_loops, 1);
        // The body should now contain 4 replicas (3 step statements between).
        let Stmt::For { body, .. } = &p.funcs[0].body[2] else {
            panic!("for expected: {:?}", p.funcs[0].body)
        };
        let Stmt::Block(v) = &**body else { panic!() };
        assert_eq!(v.len(), 7); // 4 bodies + 3 steps
    }

    #[test]
    fn does_not_unroll_non_divisible_trip() {
        let mut p = parse(
            "int a[15]; int f(void){ int i; int s=0; for(i=0;i<15;i++){ s += a[i]; } return s; }",
        )
        .unwrap();
        let stats = optimize_ast(&mut p);
        assert_eq!(stats.unrolled_loops, 0);
    }

    #[test]
    fn does_not_unroll_iv_writing_body() {
        let mut p = parse(
            "int f(void){ int i; int s=0; for(i=0;i<16;i++){ if (s > 5) i = i + 1; s++; } return s; }",
        )
        .unwrap();
        let stats = optimize_ast(&mut p);
        assert_eq!(stats.unrolled_loops, 0);
    }

    #[test]
    fn inlines_single_return_function() {
        let mut p = parse(
            "int sq(int x){ return x * x; } int f(int y){ return sq(y + 1); }",
        )
        .unwrap();
        let stats = optimize_ast(&mut p);
        assert_eq!(stats.inlined_calls, 1);
        let Stmt::Return(Some(e)) = &p.funcs[1].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Binary { .. }));
    }

    #[test]
    fn does_not_inline_impure_args() {
        let mut p = parse(
            "int sq(int x){ return x * x; } int f(int y){ return sq(y++); }",
        )
        .unwrap();
        let stats = optimize_ast(&mut p);
        assert_eq!(stats.inlined_calls, 0);
    }
}
