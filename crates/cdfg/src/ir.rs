//! The instruction-set-independent micro-IR.
//!
//! Decompiled MIPS instructions lift into these operations; all decompiler
//! passes and the behavioral synthesizer work on this representation. The IR
//! has two regimes distinguished by [`Function::is_ssa`]: after lifting,
//! virtual registers may be defined many times (they mirror machine
//! registers); after [`crate::ssa::construct`], every register has exactly
//! one definition and block-argument merges are explicit [`Op::Phi`]s.

use std::fmt;

/// A virtual register.
///
/// During lifting, numbers 0..=33 mirror the MIPS register file plus HI/LO;
/// fresh temporaries and SSA renaming allocate upward from there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg(pub u32);

impl VReg {
    /// Index for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A basic-block identifier (index into [`Function::blocks`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index for dense side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// An operand: a virtual register or an immediate constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Virtual-register operand.
    Reg(VReg),
    /// Constant operand (sign-agnostic 64-bit container for 32-bit values).
    Const(i64),
}

impl Operand {
    /// The register, if this operand is one.
    pub fn as_reg(self) -> Option<VReg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this operand is one.
    pub fn as_const(self) -> Option<i64> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Reg(_) => None,
        }
    }
}

impl From<VReg> for Operand {
    fn from(r: VReg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Binary operations. Comparison operators produce 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping 32-bit add.
    Add,
    /// Wrapping 32-bit subtract.
    Sub,
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed 64-bit product.
    MulHiS,
    /// High 32 bits of the unsigned 64-bit product.
    MulHiU,
    /// Signed division (quotient).
    DivS,
    /// Unsigned division (quotient).
    DivU,
    /// Signed remainder.
    RemS,
    /// Unsigned remainder.
    RemU,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise nor.
    Nor,
    /// Logical shift left (rhs masked to 5 bits).
    Shl,
    /// Logical shift right.
    ShrL,
    /// Arithmetic shift right.
    ShrA,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Signed less-than.
    LtS,
    /// Unsigned less-than.
    LtU,
    /// Signed less-or-equal.
    LeS,
    /// Signed greater-than.
    GtS,
    /// Signed greater-or-equal.
    GeS,
}

impl BinOp {
    /// Returns `true` for commutative operations.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::MulHiS
                | BinOp::MulHiU
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Nor
                | BinOp::Eq
                | BinOp::Ne
        )
    }

    /// Returns `true` for comparison operators (result is 0/1).
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Eq
                | BinOp::Ne
                | BinOp::LtS
                | BinOp::LtU
                | BinOp::LeS
                | BinOp::GtS
                | BinOp::GeS
        )
    }

    /// Constant-folds `lhs op rhs` with 32-bit wrapping semantics.
    ///
    /// Division/remainder by zero folds to the simulator's deterministic
    /// values so decompiled constants match executed behaviour.
    pub fn fold(self, lhs: i64, rhs: i64) -> i64 {
        let a = lhs as i32;
        let b = rhs as i32;
        let au = a as u32;
        let bu = b as u32;
        let r: i32 = match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::MulHiS => (((a as i64) * (b as i64)) >> 32) as i32,
            BinOp::MulHiU => (((au as u64) * (bu as u64)) >> 32) as i32,
            BinOp::DivS => {
                if b == 0 {
                    -1
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::DivU => au.checked_div(bu).map_or(-1, |q| q as i32),
            BinOp::RemS => {
                if b == 0 {
                    a
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::RemU => {
                if bu == 0 {
                    a
                } else {
                    (au % bu) as i32
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Nor => !(a | b),
            BinOp::Shl => ((au) << (bu & 31)) as i32,
            BinOp::ShrL => (au >> (bu & 31)) as i32,
            BinOp::ShrA => a >> (bu & 31),
            BinOp::Eq => (a == b) as i32,
            BinOp::Ne => (a != b) as i32,
            BinOp::LtS => (a < b) as i32,
            BinOp::LtU => (au < bu) as i32,
            BinOp::LeS => (a <= b) as i32,
            BinOp::GtS => (a > b) as i32,
            BinOp::GeS => (a >= b) as i32,
        };
        r as i64
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::MulHiS => "mulhis",
            BinOp::MulHiU => "mulhiu",
            BinOp::DivS => "sdiv",
            BinOp::DivU => "udiv",
            BinOp::RemS => "srem",
            BinOp::RemU => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Nor => "nor",
            BinOp::Shl => "shl",
            BinOp::ShrL => "lshr",
            BinOp::ShrA => "ashr",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
            BinOp::LtS => "slt",
            BinOp::LtU => "ult",
            BinOp::LeS => "sle",
            BinOp::GtS => "sgt",
            BinOp::GeS => "sge",
        };
        f.write_str(s)
    }
}

/// Unary operations (including the size casts operator-size reduction uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Arithmetic negate.
    Neg,
    /// Sign-extend the low 8 bits.
    SextB,
    /// Sign-extend the low 16 bits.
    SextH,
    /// Zero-extend the low 8 bits.
    ZextB,
    /// Zero-extend the low 16 bits.
    ZextH,
}

impl UnOp {
    /// Constant-folds with 32-bit semantics.
    pub fn fold(self, v: i64) -> i64 {
        let x = v as i32;
        let r: i32 = match self {
            UnOp::Not => !x,
            UnOp::Neg => x.wrapping_neg(),
            UnOp::SextB => x as u32 as u8 as i8 as i32,
            UnOp::SextH => x as u32 as u16 as i16 as i32,
            UnOp::ZextB => (x as u32 as u8) as i32,
            UnOp::ZextH => (x as u32 as u16) as i32,
        };
        r as i64
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Not => "not",
            UnOp::Neg => "neg",
            UnOp::SextB => "sext8",
            UnOp::SextH => "sext16",
            UnOp::ZextB => "zext8",
            UnOp::ZextH => "zext16",
        };
        f.write_str(s)
    }
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte.
    B,
    /// Two bytes.
    H,
    /// Four bytes.
    W,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
        }
    }

    /// Width in bits.
    pub fn bits(self) -> u8 {
        (self.bytes() * 8) as u8
    }
}

/// A non-terminator operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `dst = value`
    Const {
        /// Destination.
        dst: VReg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Copy {
        /// Destination.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`
    Un {
        /// Operation.
        op: UnOp,
        /// Destination.
        dst: VReg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination.
        dst: VReg,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = mem[addr]`
    Load {
        /// Destination.
        dst: VReg,
        /// Byte address.
        addr: Operand,
        /// Access width.
        width: MemWidth,
        /// Sign-extend narrow loads.
        signed: bool,
    },
    /// `mem[addr] = src`
    Store {
        /// Value to store.
        src: Operand,
        /// Byte address.
        addr: Operand,
        /// Access width.
        width: MemWidth,
    },
    /// Call to a function identified by its entry address.
    Call {
        /// Callee entry address.
        target: u32,
        /// Arguments (recovered from the calling convention).
        args: Vec<Operand>,
        /// Result register, if the callee produces one.
        dst: Option<VReg>,
    },
    /// SSA merge.
    Phi {
        /// Destination.
        dst: VReg,
        /// One incoming operand per predecessor block.
        args: Vec<(BlockId, Operand)>,
    },
}

impl Op {
    /// The register defined by this op, if any.
    pub fn dst(&self) -> Option<VReg> {
        match self {
            Op::Const { dst, .. }
            | Op::Copy { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Load { dst, .. }
            | Op::Phi { dst, .. } => Some(*dst),
            Op::Call { dst, .. } => *dst,
            Op::Store { .. } => None,
        }
    }

    /// Replaces the defined register.
    pub fn set_dst(&mut self, new: VReg) {
        match self {
            Op::Const { dst, .. }
            | Op::Copy { dst, .. }
            | Op::Un { dst, .. }
            | Op::Bin { dst, .. }
            | Op::Load { dst, .. }
            | Op::Phi { dst, .. } => *dst = new,
            Op::Call { dst, .. } => *dst = Some(new),
            Op::Store { .. } => {}
        }
    }

    /// Visits every operand read by this op.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Op::Const { .. } => {}
            Op::Copy { src, .. } | Op::Un { src, .. } => f(src),
            Op::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Load { addr, .. } => f(addr),
            Op::Store { src, addr, .. } => {
                f(src);
                f(addr);
            }
            Op::Call { args, .. } => args.iter().for_each(f),
            Op::Phi { args, .. } => {
                for (_, a) in args {
                    f(a);
                }
            }
        }
    }

    /// Mutably visits every operand read by this op.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Op::Const { .. } => {}
            Op::Copy { src, .. } | Op::Un { src, .. } => f(src),
            Op::Bin { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Op::Load { addr, .. } => f(addr),
            Op::Store { src, addr, .. } => {
                f(src);
                f(addr);
            }
            Op::Call { args, .. } => args.iter_mut().for_each(f),
            Op::Phi { args, .. } => {
                for (_, a) in args {
                    f(a);
                }
            }
        }
    }

    /// Returns `true` if removing this op (when its result is dead) changes
    /// observable behaviour.
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Op::Store { .. } | Op::Call { .. })
    }

    /// Returns `true` for loads and stores.
    pub fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Const { dst, value } => write!(f, "{dst} = const {value}"),
            Op::Copy { dst, src } => write!(f, "{dst} = {src}"),
            Op::Un { op, dst, src } => write!(f, "{dst} = {op} {src}"),
            Op::Bin { op, dst, lhs, rhs } => write!(f, "{dst} = {op} {lhs}, {rhs}"),
            Op::Load {
                dst,
                addr,
                width,
                signed,
            } => write!(
                f,
                "{dst} = load.{}{} [{addr}]",
                if *signed { "s" } else { "u" },
                width.bits()
            ),
            Op::Store { src, addr, width } => {
                write!(f, "store.{} [{addr}], {src}", width.bits())
            }
            Op::Call { target, args, dst } => {
                if let Some(d) = dst {
                    write!(f, "{d} = call {target:#x}(")?;
                } else {
                    write!(f, "call {target:#x}(")?;
                }
                for (k, a) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Op::Phi { dst, args } => {
                write!(f, "{dst} = phi ")?;
                for (k, (b, a)) in args.iter().enumerate() {
                    if k > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "[{b}: {a}]")?;
                }
                Ok(())
            }
        }
    }
}

/// An op plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// Address of the originating machine instruction, when lifted.
    pub pc: Option<u32>,
}

impl Inst {
    /// Wraps an op with no provenance.
    pub fn new(op: Op) -> Inst {
        Inst { op, pc: None }
    }

    /// Wraps an op tagged with its source address.
    pub fn at(op: Op, pc: u32) -> Inst {
        Inst { op, pc: Some(pc) }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional transfer.
    Jump(BlockId),
    /// Two-way conditional on `cond != 0`.
    Branch {
        /// Condition value.
        cond: Operand,
        /// Taken when nonzero.
        t: BlockId,
        /// Taken when zero.
        f: BlockId,
    },
    /// Function return.
    Return {
        /// Returned value, if the function produces one.
        value: Option<Operand>,
    },
    /// Multi-way transfer recovered from a jump table: `targets[index]`.
    Switch {
        /// Table index value.
        index: Operand,
        /// Targets in table order.
        targets: Vec<BlockId>,
        /// Fallthrough for out-of-range indices (bounds-check branch).
        default: BlockId,
    },
    /// Placeholder for blocks under construction.
    None,
}

impl Terminator {
    /// Successor block ids, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b) => vec![*b],
            Terminator::Branch { t, f, .. } => vec![*t, *f],
            Terminator::Return { .. } | Terminator::None => vec![],
            Terminator::Switch {
                targets, default, ..
            } => {
                let mut v = targets.clone();
                v.push(*default);
                v.dedup();
                v
            }
        }
    }

    /// Rewrites every successor id through `f`.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch { t, f: fl, .. } => {
                *t = f(*t);
                *fl = f(*fl);
            }
            Terminator::Switch {
                targets, default, ..
            } => {
                for t in targets {
                    *t = f(*t);
                }
                *default = f(*default);
            }
            Terminator::Return { .. } | Terminator::None => {}
        }
    }

    /// Visits operands read by the terminator.
    pub fn for_each_use(&self, mut f: impl FnMut(&Operand)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Return { value: Some(v) } => f(v),
            Terminator::Switch { index, .. } => f(index),
            _ => {}
        }
    }

    /// Mutably visits operands read by the terminator.
    pub fn for_each_use_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::Branch { cond, .. } => f(cond),
            Terminator::Return { value: Some(v) } => f(v),
            Terminator::Switch { index, .. } => f(index),
            _ => {}
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line operations.
    pub ops: Vec<Inst>,
    /// Terminator.
    pub term: Terminator,
    /// Address of the first originating machine instruction, when lifted.
    pub start_pc: Option<u32>,
    /// Dynamic execution count attached from a profile (0 = unprofiled).
    pub profile_count: u64,
    /// Logical iterations each recorded execution of this block stands
    /// for (1 = untransformed). Loop rerolling folds a `k`-way unrolled
    /// body into one section, so one profiled execution of the original
    /// block corresponds to `k` executions of the rerolled block; cycle
    /// estimators must scale `profile_count` by this factor.
    pub reroll_factor: u32,
}

impl Block {
    /// An empty block with a [`Terminator::None`] placeholder.
    pub fn new() -> Block {
        Block {
            ops: Vec::new(),
            term: Terminator::None,
            start_pc: None,
            profile_count: 0,
            reroll_factor: 1,
        }
    }

    /// Appends `op` with no provenance.
    pub fn push(&mut self, op: Op) {
        self.ops.push(Inst::new(op));
    }

    /// Appends `op` tagged with address `pc`.
    pub fn push_at(&mut self, op: Op, pc: u32) {
        self.ops.push(Inst::at(op, pc));
    }
}

impl Default for Block {
    fn default() -> Self {
        Self::new()
    }
}

/// A function: a CFG of basic blocks over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Diagnostic name (from symbols when available, else `f_<addr>`).
    pub name: String,
    /// Entry address in the original binary (0 if synthetic).
    pub entry_pc: u32,
    /// Blocks; [`BlockId`] indexes into this.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
    /// Parameters recovered from the calling convention.
    pub params: Vec<VReg>,
    /// Whether SSA invariants hold (single def per register, phis first).
    pub is_ssa: bool,
    /// Inferred bit-width per register (index by [`VReg::index`]); written by
    /// the operator-size-reduction pass. Empty until computed.
    pub vreg_bits: Vec<u8>,
    next_vreg: u32,
}

impl Function {
    /// Creates a function with a single empty entry block.
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            name: name.into(),
            entry_pc: 0,
            blocks: vec![Block::new()],
            entry: BlockId(0),
            params: Vec::new(),
            is_ssa: false,
            vreg_bits: Vec::new(),
            next_vreg: 0,
        }
    }

    /// Creates a function whose first `n` registers are pre-allocated
    /// (used by the lifter to mirror the machine register file).
    pub fn with_reserved_regs(name: impl Into<String>, n: u32) -> Function {
        let mut f = Function::new(name);
        f.next_vreg = n;
        f
    }

    /// Allocates a fresh virtual register.
    pub fn new_vreg(&mut self) -> VReg {
        let r = VReg(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    /// Number of virtual registers allocated so far.
    pub fn vreg_count(&self) -> u32 {
        self.next_vreg
    }

    /// Appends an empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId(self.blocks.len() as u32 - 1)
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Exclusive access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Total op count across blocks (excluding terminators).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Inferred width of `r` in bits (32 when size reduction has not run).
    pub fn bits_of(&self, r: VReg) -> u8 {
        self.vreg_bits.get(r.index()).copied().unwrap_or(32)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fn {} (entry {}) {{", self.name, self.entry)?;
        for id in self.block_ids() {
            let b = self.block(id);
            write!(f, "{id}")?;
            if let Some(pc) = b.start_pc {
                write!(f, " @ {pc:#x}")?;
            }
            if b.profile_count > 0 {
                write!(f, " ; count={}", b.profile_count)?;
            }
            writeln!(f, ":")?;
            for inst in &b.ops {
                writeln!(f, "    {}", inst.op)?;
            }
            match &b.term {
                Terminator::Jump(t) => writeln!(f, "    jump {t}")?,
                Terminator::Branch { cond, t, f: fl } => {
                    writeln!(f, "    br {cond} ? {t} : {fl}")?
                }
                Terminator::Return { value: Some(v) } => writeln!(f, "    ret {v}")?,
                Terminator::Return { value: None } => writeln!(f, "    ret")?,
                Terminator::Switch {
                    index,
                    targets,
                    default,
                } => writeln!(f, "    switch {index} {targets:?} default {default}")?,
                Terminator::None => writeln!(f, "    <none>")?,
            }
        }
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_matches_wrapping_semantics() {
        assert_eq!(BinOp::Add.fold(i32::MAX as i64, 1), i32::MIN as i64);
        assert_eq!(BinOp::Shl.fold(1, 33), 2); // shift amount masked to 5 bits
        assert_eq!(BinOp::ShrA.fold(-8, 1), -4);
        assert_eq!(BinOp::ShrL.fold(-8, 1), 0x7fff_fffc);
        assert_eq!(BinOp::LtU.fold(-1, 1), 0); // 0xffffffff < 1 unsigned
        assert_eq!(BinOp::DivS.fold(7, 2), 3);
        assert_eq!(BinOp::DivS.fold(7, 0), -1); // deterministic div-by-zero
        assert_eq!(BinOp::RemS.fold(7, 0), 7);
    }

    #[test]
    fn unop_fold() {
        assert_eq!(UnOp::SextB.fold(0x80), -128);
        assert_eq!(UnOp::ZextB.fold(0x180), 0x80);
        assert_eq!(UnOp::SextH.fold(0x8000), -32768);
        assert_eq!(UnOp::Not.fold(0), -1);
        assert_eq!(UnOp::Neg.fold(5), -5);
    }

    #[test]
    fn op_dst_and_uses() {
        let r0 = VReg(0);
        let r1 = VReg(1);
        let op = Op::Bin {
            op: BinOp::Add,
            dst: r0,
            lhs: Operand::Reg(r1),
            rhs: Operand::Const(3),
        };
        assert_eq!(op.dst(), Some(r0));
        let mut uses = vec![];
        op.for_each_use(|o| uses.push(*o));
        assert_eq!(uses, vec![Operand::Reg(r1), Operand::Const(3)]);
        let st = Op::Store {
            src: Operand::Reg(r0),
            addr: Operand::Reg(r1),
            width: MemWidth::W,
        };
        assert_eq!(st.dst(), None);
        assert!(st.has_side_effects());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Const(1),
            t: BlockId(1),
            f: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        let s = Terminator::Switch {
            index: Operand::Const(0),
            targets: vec![BlockId(1), BlockId(1), BlockId(2)],
            default: BlockId(3),
        };
        // deduped but order-preserving
        assert_eq!(s.successors(), vec![BlockId(1), BlockId(2), BlockId(3)]);
    }

    #[test]
    fn function_builder_basics() {
        let mut f = Function::with_reserved_regs("t", 34);
        assert_eq!(f.new_vreg(), VReg(34));
        let b = f.add_block();
        assert_eq!(b, BlockId(1));
        f.block_mut(b).push(Op::Const {
            dst: VReg(34),
            value: 9,
        });
        assert_eq!(f.op_count(), 1);
        assert_eq!(f.bits_of(VReg(34)), 32);
        let text = f.to_string();
        assert!(text.contains("bb1"));
        assert!(text.contains("const 9"));
    }
}
