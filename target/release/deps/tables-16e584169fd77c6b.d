/root/repo/target/release/deps/tables-16e584169fd77c6b.d: crates/bench/src/bin/tables.rs

/root/repo/target/release/deps/tables-16e584169fd77c6b: crates/bench/src/bin/tables.rs

crates/bench/src/bin/tables.rs:
