/root/repo/target/debug/deps/binpart_par-50c45d8165c7b3b1.d: crates/par/src/lib.rs

/root/repo/target/debug/deps/binpart_par-50c45d8165c7b3b1: crates/par/src/lib.rs

crates/par/src/lib.rs:
