//! Cycle-approximate MIPS simulator with execution profiling.
//!
//! The machine executes decoded text with architecturally correct branch
//! delay slots, counts cycles via a [`CycleModel`], and accumulates a
//! [`Profile`] (per-instruction execution counts, per-branch taken counts,
//! call counts) that later drives the 90-10 partitioner.

use crate::{Binary, CycleModel, DecodeError, Instr, Reg, HALT_PC};
use std::collections::HashMap;
use std::fmt;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Sparse, demand-zeroed flat memory.
#[derive(Debug, Default)]
pub struct Memory {
    pages: HashMap<u32, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        self.pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian halfword. Caller must ensure alignment.
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a little-endian halfword.
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        let b = value.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Reads a little-endian word.
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a little-endian word.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let b = value.to_le_bytes();
        for (k, byte) in b.iter().enumerate() {
            self.write_u8(addr.wrapping_add(k as u32), *byte);
        }
    }

    /// Bulk-copies `bytes` starting at `addr`.
    pub fn write_slice(&mut self, addr: u32, bytes: &[u8]) {
        for (k, byte) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(k as u32), *byte);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_vec(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|k| self.read_u8(addr.wrapping_add(k as u32)))
            .collect()
    }
}

/// Simulation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Program counter left the text section without reaching [`HALT_PC`].
    PcOutOfText {
        /// Offending program counter.
        pc: u32,
    },
    /// A load/store address violated natural alignment.
    Unaligned {
        /// Faulting data address.
        addr: u32,
        /// Program counter of the access.
        pc: u32,
    },
    /// The text section contained a word outside the supported subset.
    BadInstruction(DecodeError),
    /// The step budget ran out (runaway program).
    MaxStepsExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfText { pc } => write!(f, "pc {pc:#010x} left the text section"),
            SimError::Unaligned { addr, pc } => {
                write!(f, "unaligned access to {addr:#010x} at pc {pc:#010x}")
            }
            SimError::BadInstruction(e) => write!(f, "{e}"),
            SimError::MaxStepsExceeded { limit } => {
                write!(f, "exceeded {limit} instructions without halting")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<DecodeError> for SimError {
    fn from(e: DecodeError) -> Self {
        SimError::BadInstruction(e)
    }
}

/// Why the machine stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Control returned to the loader ([`HALT_PC`]).
    Halt,
    /// A `break code` instruction executed.
    Break(u32),
}

/// Execution profile collected while running.
///
/// Counts are indexed by instruction position in the text section; helper
/// methods translate from absolute addresses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    text_base: u32,
    /// Dynamic execution count per static instruction.
    pub counts: Vec<u64>,
    /// For branch instructions, how many executions were taken.
    pub taken: Vec<u64>,
    /// Dynamic call counts per callee entry address.
    pub calls: HashMap<u32, u64>,
    /// Total dynamic instructions.
    pub total_instrs: u64,
    /// Total cycles under the configured [`CycleModel`].
    pub total_cycles: u64,
    /// Dynamic load count.
    pub loads: u64,
    /// Dynamic store count.
    pub stores: u64,
}

impl Profile {
    fn new(text_base: u32, text_len: usize) -> Profile {
        Profile {
            text_base,
            counts: vec![0; text_len],
            taken: vec![0; text_len],
            calls: HashMap::new(),
            total_instrs: 0,
            total_cycles: 0,
            loads: 0,
            stores: 0,
        }
    }

    fn index(&self, pc: u32) -> Option<usize> {
        let off = pc.wrapping_sub(self.text_base);
        if off % 4 == 0 && ((off / 4) as usize) < self.counts.len() {
            Some((off / 4) as usize)
        } else {
            None
        }
    }

    /// Execution count of the instruction at `pc` (0 if outside text).
    pub fn count_at(&self, pc: u32) -> u64 {
        self.index(pc).map_or(0, |i| self.counts[i])
    }

    /// Taken count of the branch at `pc` (0 if outside text or never taken).
    pub fn taken_at(&self, pc: u32) -> u64 {
        self.index(pc).map_or(0, |i| self.taken[i])
    }

    /// Dynamic cycles attributed to the half-open pc range `[start, end)`,
    /// under a flat per-instruction model (used for region weighting).
    pub fn count_in_range(&self, start: u32, end: u32) -> u64 {
        let mut total = 0;
        let mut pc = start;
        while pc < end {
            total += self.count_at(pc);
            pc += 4;
        }
        total
    }
}

/// Configuration for a [`Machine`].
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Cycle cost table.
    pub cycles: CycleModel,
    /// Abort after this many dynamic instructions.
    pub max_steps: u64,
    /// Initial stack pointer.
    pub stack_top: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cycles: CycleModel::default(),
            max_steps: 500_000_000,
            stack_top: crate::DEFAULT_STACK_TOP,
        }
    }
}

/// Final machine state.
#[derive(Debug, Clone)]
pub struct Exit {
    /// Why execution stopped.
    pub reason: ExitReason,
    /// Register file at exit.
    pub regs: [u32; 32],
    /// Total cycles.
    pub cycles: u64,
    /// Total retired instructions.
    pub instrs: u64,
    /// Execution profile.
    pub profile: Profile,
}

impl Exit {
    /// Value of `reg` at exit.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.number() as usize]
    }
}

/// The simulator.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug)]
pub struct Machine {
    regs: [u32; 32],
    hi: u32,
    lo: u32,
    pc: u32,
    next_pc: u32,
    text: Vec<Instr>,
    text_base: u32,
    /// Data/stack memory (text is pre-decoded, not stored here).
    pub mem: Memory,
    config: SimConfig,
    profile: Profile,
    cycles: u64,
    instrs: u64,
}

impl Machine {
    /// Loads `binary` into a fresh machine.
    ///
    /// `$sp` is set to the configured stack top, `$ra` to [`HALT_PC`], and
    /// `$gp` to the data base. Initialized data is copied into memory (so
    /// jump tables and constants are readable).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadInstruction`] if the text section contains a
    /// word outside the supported subset.
    pub fn new(binary: &Binary) -> Result<Machine, SimError> {
        Machine::with_config(binary, SimConfig::default())
    }

    /// Like [`Machine::new`] with an explicit [`SimConfig`].
    ///
    /// # Errors
    ///
    /// Same as [`Machine::new`].
    pub fn with_config(binary: &Binary, config: SimConfig) -> Result<Machine, SimError> {
        let text = binary.decode_text()?;
        let mut mem = Memory::new();
        mem.write_slice(binary.data_base, &binary.data);
        let mut regs = [0u32; 32];
        regs[Reg::Sp.number() as usize] = config.stack_top;
        regs[Reg::Ra.number() as usize] = HALT_PC;
        regs[Reg::Gp.number() as usize] = binary.data_base;
        let profile = Profile::new(binary.text_base, text.len());
        Ok(Machine {
            regs,
            hi: 0,
            lo: 0,
            pc: binary.entry,
            next_pc: binary.entry.wrapping_add(4),
            text,
            text_base: binary.text_base,
            mem,
            config,
            profile,
            cycles: 0,
            instrs: 0,
        })
    }

    /// Current register value.
    pub fn reg(&self, reg: Reg) -> u32 {
        self.regs[reg.number() as usize]
    }

    /// Overwrites a register (for seeding test inputs).
    pub fn set_reg(&mut self, reg: Reg, value: u32) {
        if reg != Reg::Zero {
            self.regs[reg.number() as usize] = value;
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    fn fetch(&self, pc: u32) -> Result<Instr, SimError> {
        let off = pc.wrapping_sub(self.text_base);
        if off % 4 != 0 {
            return Err(SimError::PcOutOfText { pc });
        }
        self.text
            .get((off / 4) as usize)
            .copied()
            .ok_or(SimError::PcOutOfText { pc })
    }

    fn aligned(&self, addr: u32, align: u32) -> Result<(), SimError> {
        if addr % align != 0 {
            Err(SimError::Unaligned { addr, pc: self.pc })
        } else {
            Ok(())
        }
    }

    /// Runs until halt, `break`, or an error.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; the machine state is left at the faulting point.
    pub fn run(&mut self) -> Result<Exit, SimError> {
        loop {
            if self.pc == HALT_PC {
                return Ok(self.exit(ExitReason::Halt));
            }
            if self.instrs >= self.config.max_steps {
                return Err(SimError::MaxStepsExceeded {
                    limit: self.config.max_steps,
                });
            }
            if let Some(code) = self.step()? {
                return Ok(self.exit(ExitReason::Break(code)));
            }
        }
    }

    fn exit(&self, reason: ExitReason) -> Exit {
        Exit {
            reason,
            regs: self.regs,
            cycles: self.cycles,
            instrs: self.instrs,
            profile: self.profile.clone(),
        }
    }

    /// Executes a single instruction (the one at `pc`).
    ///
    /// Returns `Ok(Some(code))` when a `break` executes.
    ///
    /// # Errors
    ///
    /// Any [`SimError`].
    pub fn step(&mut self) -> Result<Option<u32>, SimError> {
        use Instr::*;
        let pc = self.pc;
        let instr = self.fetch(pc)?;
        let idx = (pc.wrapping_sub(self.text_base) / 4) as usize;
        self.profile.counts[idx] += 1;
        self.profile.total_instrs += 1;
        self.instrs += 1;
        let c = self.config.cycles.cycles_for(instr) as u64;
        self.cycles += c;
        self.profile.total_cycles += c;

        let r = |m: &Machine, reg: Reg| m.regs[reg.number() as usize];
        let mut taken_target: Option<u32> = None;
        let mut branch_taken = false;

        match instr {
            Add { rd, rs, rt } | Addu { rd, rs, rt } => {
                self.write(rd, r(self, rs).wrapping_add(r(self, rt)))
            }
            Sub { rd, rs, rt } | Subu { rd, rs, rt } => {
                self.write(rd, r(self, rs).wrapping_sub(r(self, rt)))
            }
            And { rd, rs, rt } => self.write(rd, r(self, rs) & r(self, rt)),
            Or { rd, rs, rt } => self.write(rd, r(self, rs) | r(self, rt)),
            Xor { rd, rs, rt } => self.write(rd, r(self, rs) ^ r(self, rt)),
            Nor { rd, rs, rt } => self.write(rd, !(r(self, rs) | r(self, rt))),
            Slt { rd, rs, rt } => {
                self.write(rd, ((r(self, rs) as i32) < (r(self, rt) as i32)) as u32)
            }
            Sltu { rd, rs, rt } => self.write(rd, (r(self, rs) < r(self, rt)) as u32),
            Sll { rd, rt, shamt } => self.write(rd, r(self, rt) << shamt),
            Srl { rd, rt, shamt } => self.write(rd, r(self, rt) >> shamt),
            Sra { rd, rt, shamt } => self.write(rd, ((r(self, rt) as i32) >> shamt) as u32),
            Sllv { rd, rt, rs } => self.write(rd, r(self, rt) << (r(self, rs) & 0x1f)),
            Srlv { rd, rt, rs } => self.write(rd, r(self, rt) >> (r(self, rs) & 0x1f)),
            Srav { rd, rt, rs } => {
                self.write(rd, ((r(self, rt) as i32) >> (r(self, rs) & 0x1f)) as u32)
            }
            Mult { rs, rt } => {
                let p = (r(self, rs) as i32 as i64) * (r(self, rt) as i32 as i64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Multu { rs, rt } => {
                let p = (r(self, rs) as u64) * (r(self, rt) as u64);
                self.lo = p as u32;
                self.hi = (p >> 32) as u32;
            }
            Div { rs, rt } => {
                let (a, b) = (r(self, rs) as i32, r(self, rt) as i32);
                if b == 0 {
                    // Architecturally UNPREDICTABLE; we pick a deterministic value.
                    self.lo = u32::MAX;
                    self.hi = a as u32;
                } else {
                    self.lo = a.wrapping_div(b) as u32;
                    self.hi = a.wrapping_rem(b) as u32;
                }
            }
            Divu { rs, rt } => {
                let (a, b) = (r(self, rs), r(self, rt));
                if b == 0 {
                    self.lo = u32::MAX;
                    self.hi = a;
                } else {
                    self.lo = a / b;
                    self.hi = a % b;
                }
            }
            Mfhi { rd } => self.write(rd, self.hi),
            Mflo { rd } => self.write(rd, self.lo),
            Mthi { rs } => self.hi = r(self, rs),
            Mtlo { rs } => self.lo = r(self, rs),
            Addi { rt, rs, imm } | Addiu { rt, rs, imm } => {
                self.write(rt, r(self, rs).wrapping_add(imm as i32 as u32))
            }
            Slti { rt, rs, imm } => self.write(rt, ((r(self, rs) as i32) < imm as i32) as u32),
            Sltiu { rt, rs, imm } => self.write(rt, (r(self, rs) < imm as i32 as u32) as u32),
            Andi { rt, rs, imm } => self.write(rt, r(self, rs) & imm as u32),
            Ori { rt, rs, imm } => self.write(rt, r(self, rs) | imm as u32),
            Xori { rt, rs, imm } => self.write(rt, r(self, rs) ^ imm as u32),
            Lui { rt, imm } => self.write(rt, (imm as u32) << 16),
            Lb { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                let v = self.mem.read_u8(a) as i8 as i32 as u32;
                self.profile.loads += 1;
                self.write(rt, v);
            }
            Lbu { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                let v = self.mem.read_u8(a) as u32;
                self.profile.loads += 1;
                self.write(rt, v);
            }
            Lh { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.aligned(a, 2)?;
                let v = self.mem.read_u16(a) as i16 as i32 as u32;
                self.profile.loads += 1;
                self.write(rt, v);
            }
            Lhu { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.aligned(a, 2)?;
                let v = self.mem.read_u16(a) as u32;
                self.profile.loads += 1;
                self.write(rt, v);
            }
            Lw { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.aligned(a, 4)?;
                let v = self.mem.read_u32(a);
                self.profile.loads += 1;
                self.write(rt, v);
            }
            Sb { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.profile.stores += 1;
                self.mem.write_u8(a, r(self, rt) as u8);
            }
            Sh { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.aligned(a, 2)?;
                self.profile.stores += 1;
                self.mem.write_u16(a, r(self, rt) as u16);
            }
            Sw { rt, base, offset } => {
                let a = r(self, base).wrapping_add(offset as i32 as u32);
                self.aligned(a, 4)?;
                self.profile.stores += 1;
                self.mem.write_u32(a, r(self, rt));
            }
            Beq { rs, rt, .. } => branch_taken = r(self, rs) == r(self, rt),
            Bne { rs, rt, .. } => branch_taken = r(self, rs) != r(self, rt),
            Blez { rs, .. } => branch_taken = (r(self, rs) as i32) <= 0,
            Bgtz { rs, .. } => branch_taken = (r(self, rs) as i32) > 0,
            Bltz { rs, .. } => branch_taken = (r(self, rs) as i32) < 0,
            Bgez { rs, .. } => branch_taken = (r(self, rs) as i32) >= 0,
            J { .. } => taken_target = instr.jump_target(pc),
            Jal { .. } => {
                taken_target = instr.jump_target(pc);
                self.write(Reg::Ra, pc.wrapping_add(8));
                if let Some(t) = taken_target {
                    *self.profile.calls.entry(t).or_insert(0) += 1;
                }
            }
            Jr { rs } => taken_target = Some(r(self, rs)),
            Jalr { rd, rs } => {
                taken_target = Some(r(self, rs));
                let link = pc.wrapping_add(8);
                self.write(rd, link);
                if let Some(t) = taken_target {
                    *self.profile.calls.entry(t).or_insert(0) += 1;
                }
            }
            Break { code } => {
                // `break` has no delay slot; stop immediately.
                return Ok(Some(code));
            }
        }

        if branch_taken {
            taken_target = instr.branch_target(pc);
            self.profile.taken[idx] += 1;
        }

        // Architectural delay slot: the instruction at `next_pc` executes
        // before any taken control transfer.
        let after_slot = taken_target.unwrap_or_else(|| self.next_pc.wrapping_add(4));
        self.pc = self.next_pc;
        self.next_pc = after_slot;
        Ok(None)
    }

    fn write(&mut self, reg: Reg, value: u32) {
        if reg != Reg::Zero {
            self.regs[reg.number() as usize] = value;
        }
    }

    /// Profile accumulated so far.
    pub fn profile(&self) -> &Profile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, BinaryBuilder};

    fn run_asm(build: impl FnOnce(&mut Asm)) -> Exit {
        let mut a = Asm::new();
        build(&mut a);
        let text = a.finish().expect("assembles");
        let binary = BinaryBuilder::new().text(text).build();
        let mut m = Machine::new(&binary).expect("loads");
        m.run().expect("runs")
    }

    #[test]
    fn delay_slot_executes_on_taken_branch() {
        // beq taken; delay slot sets $t1=7; target sets $v0=$t1.
        let exit = run_asm(|a| {
            let target = a.new_label();
            a.beq(Reg::Zero, Reg::Zero, target);
            a.li(Reg::T1, 7); // delay slot
            a.li(Reg::T1, 99); // skipped
            a.bind(target);
            a.mov(Reg::V0, Reg::T1);
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 7);
    }

    #[test]
    fn delay_slot_executes_on_jump_and_jal_links_past_slot() {
        let exit = run_asm(|a| {
            let f = a.new_label();
            a.mov(Reg::S0, Reg::Ra); // save loader return address
            a.jal(f);
            a.li(Reg::A0, 5); // delay slot: argument setup
            a.mov(Reg::V0, Reg::V1);
            a.jr(Reg::S0);
            a.nop();
            a.bind(f);
            a.addiu(Reg::V1, Reg::A0, 1);
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 6);
    }

    #[test]
    fn loop_sums_correctly_and_profile_counts() {
        let exit = run_asm(|a| {
            let top = a.new_label();
            a.li(Reg::T0, 100);
            a.li(Reg::V0, 0);
            a.bind(top);
            a.addu(Reg::V0, Reg::V0, Reg::T0);
            a.addiu(Reg::T0, Reg::T0, -1);
            a.bgtz(Reg::T0, top);
            a.nop();
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 5050);
        // The loop body instruction at index 2 ran 100 times.
        assert_eq!(exit.profile.counts[2], 100);
        // The branch was taken 99 times.
        assert_eq!(exit.profile.taken[4], 99);
        assert_eq!(exit.profile.count_at(crate::DEFAULT_TEXT_BASE + 8), 100);
    }

    #[test]
    fn memory_ops_sign_and_zero_extend() {
        let exit = run_asm(|a| {
            a.li(Reg::T0, -1);
            a.sb(Reg::T0, 0, Reg::Sp);
            a.lb(Reg::V0, 0, Reg::Sp);
            a.lbu(Reg::V1, 0, Reg::Sp);
            a.li(Reg::T1, -2);
            a.sh(Reg::T1, 4, Reg::Sp);
            a.lh(Reg::A0, 4, Reg::Sp);
            a.lhu(Reg::A1, 4, Reg::Sp);
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 0xffff_ffff);
        assert_eq!(exit.reg(Reg::V1), 0xff);
        assert_eq!(exit.reg(Reg::A0), 0xffff_fffe);
        assert_eq!(exit.reg(Reg::A1), 0xfffe);
    }

    #[test]
    fn mult_div_hi_lo() {
        let exit = run_asm(|a| {
            a.li(Reg::T0, -6);
            a.li(Reg::T1, 7);
            a.mult(Reg::T0, Reg::T1);
            a.mflo(Reg::V0); // -42
            a.li(Reg::T2, 17);
            a.li(Reg::T3, 5);
            a.div(Reg::T2, Reg::T3);
            a.mflo(Reg::V1); // 3
            a.mfhi(Reg::A0); // 2
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0) as i32, -42);
        assert_eq!(exit.reg(Reg::V1), 3);
        assert_eq!(exit.reg(Reg::A0), 2);
    }

    #[test]
    fn div_by_zero_is_deterministic() {
        let exit = run_asm(|a| {
            a.li(Reg::T0, 9);
            a.li(Reg::T1, 0);
            a.div(Reg::T0, Reg::T1);
            a.mflo(Reg::V0);
            a.mfhi(Reg::V1);
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), u32::MAX);
        assert_eq!(exit.reg(Reg::V1), 9);
    }

    #[test]
    fn break_stops_with_code() {
        let exit = run_asm(|a| {
            a.li(Reg::V0, 3);
            a.brk(42);
        });
        assert_eq!(exit.reason, ExitReason::Break(42));
        assert_eq!(exit.reg(Reg::V0), 3);
    }

    #[test]
    fn unaligned_word_access_errors() {
        let mut a = Asm::new();
        a.li(Reg::T0, 2);
        a.lw(Reg::V0, 0, Reg::T0);
        a.jr(Reg::Ra);
        a.nop();
        let binary = BinaryBuilder::new().text(a.finish().unwrap()).build();
        let mut m = Machine::new(&binary).unwrap();
        let err = m.run().unwrap_err();
        assert!(matches!(err, SimError::Unaligned { addr: 2, .. }));
    }

    #[test]
    fn runaway_program_hits_step_limit() {
        let mut a = Asm::new();
        let top = a.new_label();
        a.bind(top);
        a.b(top);
        a.nop();
        let binary = BinaryBuilder::new().text(a.finish().unwrap()).build();
        let mut m = Machine::with_config(
            &binary,
            SimConfig {
                max_steps: 1000,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            m.run(),
            Err(SimError::MaxStepsExceeded { limit: 1000 })
        ));
    }

    #[test]
    fn data_section_visible_and_writable() {
        let data_base = crate::DEFAULT_DATA_BASE;
        let mut a = Asm::new();
        a.la(Reg::T0, data_base);
        a.lw(Reg::V0, 0, Reg::T0);
        a.addiu(Reg::V0, Reg::V0, 1);
        a.sw(Reg::V0, 0, Reg::T0);
        a.jr(Reg::Ra);
        a.nop();
        let binary = BinaryBuilder::new()
            .text(a.finish().unwrap())
            .data(41u32.to_le_bytes().to_vec())
            .build();
        let mut m = Machine::new(&binary).unwrap();
        let exit = m.run().unwrap();
        assert_eq!(exit.reg(Reg::V0), 42);
        assert_eq!(m.mem.read_u32(data_base), 42);
    }

    #[test]
    fn sltiu_sign_extends_then_compares_unsigned() {
        let exit = run_asm(|a| {
            a.li(Reg::T0, 5);
            a.sltiu(Reg::V0, Reg::T0, -1); // 5 < 0xffffffff => 1
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 1);
    }

    #[test]
    fn writes_to_zero_register_discarded() {
        let exit = run_asm(|a| {
            a.li(Reg::Zero, 55);
            a.mov(Reg::V0, Reg::Zero);
            a.jr(Reg::Ra);
            a.nop();
        });
        assert_eq!(exit.reg(Reg::V0), 0);
    }
}
