/root/repo/target/release/deps/binpart_synth-7476b3f96ad86f5d.d: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

/root/repo/target/release/deps/libbinpart_synth-7476b3f96ad86f5d.rlib: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

/root/repo/target/release/deps/libbinpart_synth-7476b3f96ad86f5d.rmeta: crates/synth/src/lib.rs crates/synth/src/schedule.rs crates/synth/src/tech.rs crates/synth/src/vhdl.rs

crates/synth/src/lib.rs:
crates/synth/src/schedule.rs:
crates/synth/src/tech.rs:
crates/synth/src/vhdl.rs:
