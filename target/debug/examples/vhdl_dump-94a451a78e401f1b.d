/root/repo/target/debug/examples/vhdl_dump-94a451a78e401f1b.d: examples/vhdl_dump.rs Cargo.toml

/root/repo/target/debug/examples/libvhdl_dump-94a451a78e401f1b.rmeta: examples/vhdl_dump.rs Cargo.toml

examples/vhdl_dump.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
