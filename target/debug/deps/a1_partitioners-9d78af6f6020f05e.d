/root/repo/target/debug/deps/a1_partitioners-9d78af6f6020f05e.d: crates/bench/benches/a1_partitioners.rs Cargo.toml

/root/repo/target/debug/deps/liba1_partitioners-9d78af6f6020f05e.rmeta: crates/bench/benches/a1_partitioners.rs Cargo.toml

crates/bench/benches/a1_partitioners.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
