/root/repo/target/debug/deps/e4_decompile-d548d6012d31d7b1.d: crates/bench/benches/e4_decompile.rs Cargo.toml

/root/repo/target/debug/deps/libe4_decompile-d548d6012d31d7b1.rmeta: crates/bench/benches/e4_decompile.rs Cargo.toml

crates/bench/benches/e4_decompile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
