/root/repo/target/release/libbinpart_platform.rlib: /root/repo/crates/platform/src/lib.rs
