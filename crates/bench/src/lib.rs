//! Experiment runners that regenerate every table and figure of the DATE'05
//! evaluation (see DESIGN.md section 4 for the experiment index).
//!
//! The same runners back the `tables` binary (human-readable paper-vs-
//! measured output) and the Criterion benches (wall-clock cost of the flow
//! itself — relevant because the paper motivates the fast greedy
//! partitioner with dynamic-synthesis use).
//!
//! Two throughput layers keep table regeneration fast:
//!
//! * **Memoization** ([`CompiledSuite`]): every `(benchmark, OptLevel)`
//!   binary is compiled once, its software profile simulated (lazily) once,
//!   and its CDFG recovered once per distinct [`DecompileOptions`],
//!   process-wide, no matter how many experiments (E1/E2/E3/E4/A1/A2/A3)
//!   ask for it. Experiments that re-run the flow with different
//!   partitioner/platform options enter at
//!   [`binpart_core::flow::Flow::run_with_program`] via [`run_cell`] — the
//!   platform clock and flow options do not affect the software run or the
//!   recovered CDFG.
//! * **Parallelism**: suite-shaped loops fan out with
//!   [`binpart_par::par_map`] (work-stealing scoped threads; set
//!   `BINPART_THREADS=1` to force sequential runs).

use binpart_core::flow::{Flow, FlowOptions};
use binpart_core::{DecompileError, DecompileOptions, LiftError};
use binpart_core::decompile::DecompiledProgram;
use binpart_minicc::OptLevel;
use binpart_mips::sim::{Exit, Machine, SimConfig};
use binpart_mips::Binary;
use binpart_par::par_map;
use binpart_platform::{geomean, Platform};
use binpart_telemetry::{Counter, Recorder};
use binpart_workloads::{suite, Benchmark};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// One benchmark compiled at one optimization level, with its software
/// profile: everything downstream experiments need, computed exactly once.
#[derive(Debug)]
pub struct CompiledBench {
    /// The source benchmark.
    pub bench: Benchmark,
    /// The compiled binary.
    pub binary: Binary,
    /// Lazily simulated software run (experiments that only decompile —
    /// e.g. E4 — never pay for simulation).
    exit: OnceLock<Exit>,
}

impl CompiledBench {
    /// Software run: block counts + branch bias + cycles, simulated once
    /// on first use. The cheap
    /// [`EdgeProfiler`](binpart_mips::sim::EdgeProfiler) reconstructs
    /// exact per-instruction counts *and* branch taken counts — everything
    /// the partitioning experiments consume (including the measured
    /// loop-entry estimates) — without paying for per-op full-profile
    /// bookkeeping on the profiling pass.
    ///
    /// The run uses [`FlowOptions::aggressive_sim`]'s simulator
    /// configuration (aggressive superinstruction fusion): fusion is
    /// observationally exact at every level (bit-identical `Exit` +
    /// `Profile`, asserted by `tests/differential.rs`), so every
    /// experiment's numbers are unchanged — the profiling pass is just
    /// faster.
    pub fn exit(&self) -> &Exit {
        self.exit.get_or_init(|| {
            let mut machine =
                Machine::with_config(&self.binary, FlowOptions::aggressive_sim().sim)
                    .expect("suite decodes");
            let mut prof = binpart_mips::sim::EdgeProfiler::new();
            machine.run_with(&mut prof).expect("suite runs")
        })
    }
}

/// Do two simulator configurations produce the same `Exit` (profile +
/// cycles)? Fusion never affects observable state, so it is ignored; the
/// cycle model, step budget, and stack placement all do.
pub fn profile_equivalent(a: SimConfig, b: SimConfig) -> bool {
    a.cycles == b.cycles && a.max_steps == b.max_steps && a.stack_top == b.stack_top
}

type SuiteKey = (&'static str, OptLevel);
type SuiteMap = Mutex<HashMap<SuiteKey, Arc<OnceLock<Arc<CompiledBench>>>>>;
/// Decompile cache key: benchmark, level, and the full option set (so a
/// future `DecompileOptions` field cannot silently alias cache entries).
type ProgKey = (&'static str, OptLevel, DecompileOptions);
type ProgResult = Result<Arc<DecompiledProgram>, DecompileError>;
type ProgMap = Mutex<HashMap<ProgKey, Arc<OnceLock<ProgResult>>>>;

/// Process-wide memoization of compiled + profiled suite binaries.
///
/// The map holds one [`OnceLock`] per key so two threads asking for
/// *different* entries never serialize on each other's compile/simulate
/// work — the outer mutex is held only for the map lookup.
pub struct CompiledSuite;

impl CompiledSuite {
    fn map() -> &'static SuiteMap {
        static MAP: OnceLock<SuiteMap> = OnceLock::new();
        MAP.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// The compiled binary and software profile for `(bench, level)`,
    /// building them on first use.
    pub fn get(bench: &Benchmark, level: OptLevel) -> Arc<CompiledBench> {
        let cell = {
            let mut map = Self::map().lock().expect("suite cache poisoned");
            map.entry((bench.name, level))
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        cell.get_or_init(|| {
            let binary = bench.compile(level).expect("suite compiles");
            Arc::new(CompiledBench {
                bench: bench.clone(),
                binary,
                exit: OnceLock::new(),
            })
        })
        .clone()
    }

    fn prog_map() -> &'static ProgMap {
        static MAP: OnceLock<ProgMap> = OnceLock::new();
        MAP.get_or_init(|| Mutex::new(HashMap::new()))
    }

    /// The (pre-profile) decompiled program for `(bench, level, opts)`,
    /// recovering the CDFG on first use. Callers clone the `Arc`'d program
    /// into [`Flow::run_with_program`]; recovery failures (the paper's
    /// jump-table cases) are cached as errors.
    pub fn decompiled(
        bench: &Benchmark,
        level: OptLevel,
        opts: DecompileOptions,
    ) -> ProgResult {
        let key = (bench.name, level, opts);
        let cell = {
            let mut map = Self::prog_map().lock().expect("program cache poisoned");
            map.entry(key)
                .or_insert_with(|| Arc::new(OnceLock::new()))
                .clone()
        };
        cell.get_or_init(|| {
            let compiled = Self::get(bench, level);
            binpart_core::decompile(&compiled.binary, opts).map(Arc::new)
        })
        .clone()
    }

    /// Number of distinct `(benchmark, OptLevel)` entries built so far
    /// (observability for tests and the `tables` binary).
    pub fn entries_built() -> usize {
        Self::map().lock().expect("suite cache poisoned").len()
    }
}

/// Times `run` (which returns the number of work items it retired) over
/// `passes` passes and returns `(best_seconds, last_result)` — the shared
/// measurement primitive behind `tables`' `BENCH_sim.json` snapshot and
/// the `sim_throughput --smoke` CI check, so the two stay methodologically
/// comparable. Best-of-N shaves scheduler noise off a shared box.
pub fn best_of(passes: usize, run: &dyn Fn() -> u64) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut result = 0;
    for _ in 0..passes.max(1) {
        let t0 = std::time::Instant::now();
        result = run();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, result)
}

/// Why a `BENCH_sim.json` snapshot check failed. Every variant names the
/// path that was actually probed and, where relevant, the offending key —
/// and the [`Display`](std::fmt::Display) impl says how to fix it, so a CI
/// failure is actionable without opening the source.
#[derive(Debug)]
pub enum SnapshotError {
    /// The snapshot exists but could not be read (permissions, a directory
    /// squatting on the name, ...). Distinct from "absent", which is fine.
    Unreadable {
        path: String,
        source: std::io::Error,
    },
    /// The snapshot is readable but a required column is missing — a stale
    /// file from before the column existed, or a truncated write.
    MissingKey { path: String, key: String },
    /// The column exists but is `null` (a `tables sim` run that skipped the
    /// full-suite pass, or a corrupt value).
    NullKey { path: String, key: String },
}

/// The one command that rewrites the snapshot; quoted in every error.
const REGEN_HINT: &str =
    "regenerate it from the workspace root with `cargo run --release -p binpart-bench --bin tables sim`";

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Unreadable { path, source } => write!(
                f,
                "snapshot {path} exists but cannot be read ({source}); {REGEN_HINT}"
            ),
            SnapshotError::MissingKey { path, key } => write!(
                f,
                "snapshot {path} is missing the \"{key}\" column (stale or corrupt file); {REGEN_HINT}"
            ),
            SnapshotError::NullKey { path, key } => write!(
                f,
                "snapshot {path} has \"{key}\": null; rerun with `tables all` so the full-suite pass fills it, or {REGEN_HINT}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Unreadable { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Checks that `BENCH_sim.json` carries each of `keys` with a non-null
/// value. Benches run with the package dir as cwd while the snapshot lives
/// at the workspace root, so both locations are probed. `Ok(false)` means
/// the snapshot is absent — fresh checkouts skip the check; an unreadable
/// or corrupt snapshot is an error, never a silent skip.
pub fn check_snapshot_columns(keys: &[&str]) -> Result<bool, SnapshotError> {
    check_snapshot_at(&["BENCH_sim.json", "../../BENCH_sim.json"], keys)
}

/// Path-parameterized core of [`check_snapshot_columns`] so tests can point
/// it at fixture files without faking the working directory.
pub fn check_snapshot_at(paths: &[&str], keys: &[&str]) -> Result<bool, SnapshotError> {
    let mut found = None;
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(json) => {
                found = Some((path.to_string(), json));
                break;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(source) => {
                return Err(SnapshotError::Unreadable {
                    path: path.to_string(),
                    source,
                })
            }
        }
    }
    let Some((path, json)) = found else {
        return Ok(false);
    };
    for key in keys {
        if !json.contains(&format!("\"{key}\"")) {
            return Err(SnapshotError::MissingKey {
                path: path.clone(),
                key: (*key).to_string(),
            });
        }
        let field = json
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|t| t.trim().split([',', '}']).next())
            .map(str::trim)
            .unwrap_or("null");
        if field == "null" {
            return Err(SnapshotError::NullKey {
                path: path.clone(),
                key: (*key).to_string(),
            });
        }
    }
    Ok(true)
}

/// Panicking wrapper around [`check_snapshot_columns`] for the CI `--smoke`
/// modes: absent snapshot prints a note and returns `false`; any defect
/// panics with the actionable [`SnapshotError`] message.
pub fn assert_snapshot_columns(keys: &[&str]) -> bool {
    match check_snapshot_columns(keys) {
        Ok(true) => {
            println!("smoke: BENCH_sim.json columns present and non-null: {keys:?}");
            true
        }
        Ok(false) => {
            println!("smoke: BENCH_sim.json not present, skipping field check");
            false
        }
        Err(e) => panic!("{e}"),
    }
}

/// Runs the flow tail for one memoized cell: cached binary + cached profile
/// + cached (cloned) decompiled program.
///
/// # Errors
///
/// Returns the cached [`DecompileError`] when CDFG recovery failed.
pub fn run_cell(
    bench: &Benchmark,
    level: OptLevel,
    options: FlowOptions,
) -> Result<binpart_core::flow::FlowReport, DecompileError> {
    let compiled = CompiledSuite::get(bench, level);
    let program = CompiledSuite::decompiled(bench, level, options.decompile)?;
    // The memoized profile is valid for any profile-equivalent simulator
    // configuration (fusion is observationally exact and thus ignored); a
    // caller-supplied cycle model or step budget gets a fresh (uncached)
    // software run instead of silently wrong numbers.
    if !profile_equivalent(options.sim, SimConfig::default()) {
        let sim = options.sim;
        let flow = Flow::new(options);
        let mut machine =
            Machine::with_config(&compiled.binary, sim).expect("suite decodes");
        let mut prof = binpart_mips::sim::EdgeProfiler::new();
        let exit = machine.run_with(&mut prof).expect("suite runs");
        return Ok(flow.run_with_program(&compiled.binary, &exit, (*program).clone()));
    }
    let flow = Flow::new(options);
    Ok(flow.run_with_program(&compiled.binary, compiled.exit(), (*program).clone()))
}

/// Aggregate result of co-simulating the full (benchmark, OptLevel)
/// matrix — the measured (not modeled) hardware numbers.
#[derive(Debug, Clone)]
pub struct CosimMatrixSummary {
    /// Software-equivalent cycles co-simulated per wall-clock second
    /// (single pass over the matrix: every cell runs the hybrid machine —
    /// software + FSMD + per-invocation store differential).
    pub cosim_cycles_per_sec: f64,
    /// Mean absolute measured-vs-analytic hardware-cycle error, percent,
    /// over every hardware-executed kernel of the matrix.
    pub estimate_error_pct_mean: f64,
    /// Maximum absolute estimate error, percent.
    pub estimate_error_pct_max: f64,
    /// Hardware invocations executed across the matrix.
    pub hw_invocations: u64,
    /// Store-sequence divergences (must be zero; asserted by
    /// `tests/cosim_differential.rs`).
    pub store_mismatches: u64,
    /// Matrix cells whose hybrid exit was bit-identical to software.
    pub bit_identical_cells: usize,
    /// Matrix cells co-simulated.
    pub cells: usize,
}

/// Co-simulates every (benchmark, OptLevel) cell (jump-table recovery on,
/// so all 20 benchmarks complete) and reports throughput + estimate-error
/// aggregates. Timing is best-of-`passes`, single-threaded, fresh staged
/// caches per pass — comparable across PRs like the other snapshot rows.
pub fn run_cosim_matrix(passes: usize) -> CosimMatrixSummary {
    let suite = suite();
    let mut options = FlowOptions::default();
    options.decompile.recover_jump_tables = true;
    let details: Mutex<Option<CosimMatrixSummary>> = Mutex::new(None);
    let pass = || -> u64 {
        let mut cycles = 0u64;
        let mut errors: Vec<f64> = Vec::new();
        let mut hw_invocations = 0u64;
        let mut store_mismatches = 0u64;
        let mut bit_identical_cells = 0usize;
        let mut cells = 0usize;
        for b in &suite {
            for level in OptLevel::ALL {
                let compiled = CompiledSuite::get(b, level);
                let staged = binpart_core::stage::StagedFlow::new(&compiled.binary);
                let report = staged.cosimulate(&options).expect("suite cosimulates");
                cells += 1;
                cycles += report.sw_cycles;
                hw_invocations += report.hw_invocations();
                store_mismatches += report.store_mismatches();
                bit_identical_cells += usize::from(report.exit_bit_identical);
                errors.extend(report.kernels.iter().filter_map(|k| k.error_pct));
            }
        }
        let abs: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
        let mean = if abs.is_empty() {
            0.0
        } else {
            abs.iter().sum::<f64>() / abs.len() as f64
        };
        let max = abs.iter().fold(0.0f64, |m, &e| m.max(e));
        *details.lock().unwrap() = Some(CosimMatrixSummary {
            cosim_cycles_per_sec: 0.0,
            estimate_error_pct_mean: mean,
            estimate_error_pct_max: max,
            hw_invocations,
            store_mismatches,
            bit_identical_cells,
            cells,
        });
        cycles
    };
    let (secs, cycles) = best_of(passes, &pass);
    let mut summary = details
        .into_inner()
        .unwrap()
        .expect("at least one cosim pass ran");
    summary.cosim_cycles_per_sec = cycles as f64 / secs;
    summary
}

/// The telemetry-derived snapshot columns measured by [`telemetry_pass`]:
/// inclusive per-stage wall clock plus the two cache rates the snapshot
/// tracks across PRs.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryColumns {
    /// Inclusive wall total of every `profile` span, seconds.
    pub stage_wall_s_profile: f64,
    /// Inclusive wall total of every `decompile` span, seconds.
    pub stage_wall_s_decompile: f64,
    /// Inclusive wall total of every `estimate` span, seconds.
    pub stage_wall_s_estimate: f64,
    /// Inclusive wall total of every `evaluate` span, seconds.
    pub stage_wall_s_evaluate: f64,
    /// Inclusive wall total of every `cosimulate` span, seconds.
    pub stage_wall_s_cosimulate: f64,
    /// `EstimateCache` memo hits / (hits + misses) over the whole pass.
    pub estimate_cache_hit_rate: f64,
    /// Superblock side exits per completed trace pass.
    pub trace_side_exit_rate: f64,
    /// Memory-bus stall cycles as a percentage of all measured hardware
    /// cycles, aggregated over every instrumented kernel of the matrix
    /// (from the FSMD cycle-attribution profiles).
    pub hw_bus_stall_pct: f64,
    /// Pipelined-loop fill/drain cycles as a percentage of all measured
    /// hardware cycles.
    pub hw_fill_overhead_pct: f64,
    /// FSM states entered at least once / states in the synthesized
    /// region, aggregated over every instrumented kernel (1.0 = every
    /// state exercised by the suite's data).
    pub hw_state_coverage: f64,
}

/// One fully instrumented pass over the workload the snapshot tracks: the
/// complete (benchmark, OptLevel) co-simulation matrix with the superblock
/// engine on (so the trace-cache counters populate) followed by the
/// standard 100-point staged sweep (5 clocks × 5 budgets × 4 levels on
/// autcor00), all recorded on a single [`Recorder`].
///
/// Returns the recorder (callers export Chrome traces or render the
/// summary table from it) and the derived [`TelemetryColumns`].
pub fn telemetry_pass() -> (Recorder, TelemetryColumns) {
    let rec = Recorder::new();
    let mut options = FlowOptions::aggressive_sim();
    options.decompile.recover_jump_tables = true;
    options.sim.superblocks = true;
    let mut hw_measured = 0u64;
    let mut hw_stall = 0u64;
    let mut hw_fill = 0u64;
    let mut hw_states_executed = 0u64;
    let mut hw_states_total = 0u64;
    for b in &suite() {
        for level in OptLevel::ALL {
            let compiled = CompiledSuite::get(b, level);
            let staged =
                binpart_core::stage::StagedFlow::with_telemetry(&compiled.binary, &rec);
            let report = staged.cosimulate(&options).expect("suite cosimulates");
            // The instrumented flow attaches an FSMD profile to every
            // hardware-executed kernel; aggregate the attribution split
            // suite-wide for the snapshot's hardware columns.
            for k in &report.kernels {
                if let Some(p) = &k.hw_profile {
                    hw_measured += p.measured_cycles;
                    hw_stall += p.attributed.bus_stall;
                    hw_fill += p.attributed.fill_drain;
                    hw_states_executed += p.states_executed as u64;
                    hw_states_total += p.states_total as u64;
                }
            }
        }
    }
    let b = suite()
        .into_iter()
        .find(|b| b.name == "autcor00")
        .expect("suite has autcor00");
    let mut base = FlowOptions::default();
    base.decompile.recover_jump_tables = true;
    let sweep = binpart_explore::Sweep::with_base(base)
        .clocks([40e6, 100e6, 200e6, 300e6, 400e6])
        .area_budgets([5_000, 15_000, 40_000, 100_000, 250_000])
        .opt_levels(OptLevel::ALL);
    let result =
        sweep.run_with_telemetry(&rec, |level| b.compile(level).map_err(|e| e.to_string()));
    assert_eq!(result.points.len(), 100, "sweep grid is 5 x 5 x 4");
    let report = rec.report();
    let passes = rec.counter_total(Counter::TracePasses);
    let side_exits = rec.counter_total(Counter::TraceSideExits);
    let cols = TelemetryColumns {
        stage_wall_s_profile: report.span_total_s("profile"),
        stage_wall_s_decompile: report.span_total_s("decompile"),
        stage_wall_s_estimate: report.span_total_s("estimate"),
        stage_wall_s_evaluate: report.span_total_s("evaluate"),
        stage_wall_s_cosimulate: report.span_total_s("cosimulate"),
        estimate_cache_hit_rate: report
            .hit_rate(Counter::EstimateCacheHit, Counter::EstimateCacheMiss)
            .unwrap_or(0.0),
        trace_side_exit_rate: if passes == 0 {
            0.0
        } else {
            side_exits as f64 / passes as f64
        },
        hw_bus_stall_pct: if hw_measured == 0 {
            0.0
        } else {
            100.0 * hw_stall as f64 / hw_measured as f64
        },
        hw_fill_overhead_pct: if hw_measured == 0 {
            0.0
        } else {
            100.0 * hw_fill as f64 / hw_measured as f64
        },
        hw_state_coverage: if hw_states_total == 0 {
            0.0
        } else {
            hw_states_executed as f64 / hw_states_total as f64
        },
    };
    (rec, cols)
}

/// Reads one numeric column from the tracked `BENCH_sim.json` snapshot,
/// probing the same locations as [`check_snapshot_columns`]. `None` when
/// the snapshot, the key, or a parseable value is absent — callers treat
/// that as "no baseline yet", never an error (fresh checkouts have no
/// snapshot).
pub fn read_snapshot_value(key: &str) -> Option<f64> {
    read_snapshot_value_at(&["BENCH_sim.json", "../../BENCH_sim.json"], key)
}

/// Path-parameterized core of [`read_snapshot_value`] so tests can point it
/// at fixture files without faking the working directory.
pub fn read_snapshot_value_at(paths: &[&str], key: &str) -> Option<f64> {
    for path in paths {
        let Ok(json) = std::fs::read_to_string(path) else {
            continue;
        };
        return json
            .split(&format!("\"{key}\":"))
            .nth(1)
            .and_then(|t| t.trim().split([',', '}']).next())
            .and_then(|v| v.trim().parse().ok());
    }
    None
}

/// Extracts every `"key": number` pair from one flat JSON object, in
/// declaration order. The snapshot and its history lines are machine-
/// written flat objects of numbers (and the occasional `null`, which is
/// skipped), so a full JSON parser — a dependency this workspace does not
/// take — is not needed.
pub fn parse_json_numbers(json: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(q) = rest.find('"') {
        rest = &rest[q + 1..];
        let Some(qe) = rest.find('"') else { break };
        let key = &rest[..qe];
        rest = &rest[qe + 1..];
        let Some(c) = rest.find(':') else { break };
        let val = rest[c + 1..].trim_start();
        let end = val.find([',', '}', '\n']).unwrap_or(val.len());
        if let Ok(v) = val[..end].trim().parse::<f64>() {
            out.push((key.to_string(), v));
        }
        rest = &rest[c + 1..];
    }
    out
}

/// Appends one snapshot to the `BENCH_history.jsonl` performance log: the
/// (pretty-printed) `BENCH_sim.json` object is flattened to a single line
/// and stamped with a monotonic `run_id` (max existing id + 1, so the log
/// survives manual pruning). Returns the id assigned.
///
/// # Errors
///
/// Propagates I/O failures reading or appending the history file; an
/// absent file is the empty history, not an error.
pub fn history_append(path: &str, snapshot_json: &str) -> std::io::Result<u64> {
    let prev = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let run_id = prev
        .lines()
        .filter_map(|l| {
            parse_json_numbers(l)
                .into_iter()
                .find(|(k, _)| k == "run_id")
                .map(|(_, v)| v as u64)
        })
        .max()
        .unwrap_or(0)
        + 1;
    let flat: String = snapshot_json.lines().map(str::trim).collect();
    let body = flat.strip_prefix('{').unwrap_or(&flat);
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{{\"run_id\": {run_id}, {body}")?;
    Ok(run_id)
}

/// The last two entries of the history log, parsed to `(key, value)`
/// columns — the input to `tables trend`. `None` when the file is absent
/// or holds fewer than two non-empty lines (no trend to report yet).
#[allow(clippy::type_complexity)]
pub fn history_last_two(path: &str) -> Option<(Vec<(String, f64)>, Vec<(String, f64)>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let [.., prev, cur] = lines[..] else {
        return None;
    };
    Some((parse_json_numbers(prev), parse_json_numbers(cur)))
}

/// One benchmark's row of Table 1 (experiment E1).
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Benchmark name.
    pub name: String,
    /// Suite label.
    pub suite: &'static str,
    /// `None` when CDFG recovery failed (the paper's 2-of-20).
    pub result: Option<E1Numbers>,
}

/// Numbers for a successfully partitioned benchmark.
#[derive(Debug, Clone, Copy)]
pub struct E1Numbers {
    /// Application speedup.
    pub app_speedup: f64,
    /// Mean kernel speedup.
    pub kernel_speedup: f64,
    /// Energy savings fraction.
    pub energy_savings: f64,
    /// Area in gate equivalents.
    pub area_gates: u64,
    /// Fraction of cycles moved to hardware.
    pub coverage: f64,
}

/// E1: the 20-benchmark table at `-O1`, 200 MHz.
pub fn run_e1(clock_hz: f64, recover_jump_tables: bool) -> Vec<E1Row> {
    par_map(&suite(), |b| {
        run_one(b, OptLevel::O1, clock_hz, recover_jump_tables)
    })
}

/// Runs one benchmark through the whole flow (software profile memoized).
pub fn run_one(
    b: &Benchmark,
    level: OptLevel,
    clock_hz: f64,
    recover_jump_tables: bool,
) -> E1Row {
    let options = FlowOptions {
        platform: Platform::mips_virtex2(clock_hz),
        decompile: DecompileOptions {
            recover_jump_tables,
            ..Default::default()
        },
        ..Default::default()
    };
    match run_cell(b, level, options) {
        Ok(report) => E1Row {
            name: b.name.to_string(),
            suite: b.suite.label(),
            result: Some(E1Numbers {
                app_speedup: report.hybrid.app_speedup,
                kernel_speedup: report.hybrid.mean_kernel_speedup(),
                energy_savings: report.hybrid.energy_savings,
                area_gates: report.hybrid.total_area_gates,
                coverage: report.partition.coverage(),
            }),
        },
        Err(DecompileError::Lift(LiftError::IndirectJump { .. })) => E1Row {
            name: b.name.to_string(),
            suite: b.suite.label(),
            result: None,
        },
        Err(e) => panic!("{}: unexpected flow error: {e}", b.name),
    }
}

/// Summary statistics over E1 rows.
#[derive(Debug, Clone, Copy)]
pub struct E1Summary {
    /// Successfully recovered benchmarks.
    pub recovered: usize,
    /// Failures (indirect jumps).
    pub failed: usize,
    /// Mean application speedup.
    pub mean_speedup: f64,
    /// Mean kernel speedup.
    pub mean_kernel_speedup: f64,
    /// Mean energy savings.
    pub mean_savings: f64,
    /// Mean area (gate equivalents).
    pub mean_area: u64,
}

/// Averages an E1 table.
pub fn summarize_e1(rows: &[E1Row]) -> E1Summary {
    let ok: Vec<&E1Numbers> = rows.iter().filter_map(|r| r.result.as_ref()).collect();
    let n = ok.len().max(1) as f64;
    E1Summary {
        recovered: ok.len(),
        failed: rows.len() - ok.len(),
        mean_speedup: geomean(ok.iter().map(|r| r.app_speedup)),
        mean_kernel_speedup: geomean(ok.iter().map(|r| r.kernel_speedup)),
        mean_savings: ok.iter().map(|r| r.energy_savings).sum::<f64>() / n,
        mean_area: (ok.iter().map(|r| r.area_gates).sum::<u64>() as f64 / n) as u64,
    }
}

/// E2: the platform sweep row for one clock.
pub fn run_e2(clock_hz: f64) -> E1Summary {
    summarize_e1(&run_e1(clock_hz, false))
}

/// One row of E3 (optimization-level study).
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Benchmark name.
    pub name: String,
    /// Optimization level.
    pub level: OptLevel,
    /// Software time (ms at the platform clock).
    pub sw_time_ms: f64,
    /// Hybrid time (ms).
    pub hybrid_time_ms: f64,
    /// Speedup.
    pub speedup: f64,
    /// Energy savings.
    pub savings: f64,
}

/// E3: 4 benchmarks x 4 levels at 200 MHz (jump-table recovery on, so every
/// cell completes).
pub fn run_e3() -> Vec<E3Row> {
    let cells: Vec<(Benchmark, OptLevel)> = binpart_workloads::opt_level_subset()
        .into_iter()
        .flat_map(|b| OptLevel::ALL.map(|level| (b.clone(), level)))
        .collect();
    par_map(&cells, |(b, level)| {
        let mut options = FlowOptions::default();
        options.decompile.recover_jump_tables = true;
        let report = run_cell(b, *level, options).expect("flow");
        E3Row {
            name: b.name.to_string(),
            level: *level,
            sw_time_ms: report.hybrid.sw_time_s * 1e3,
            hybrid_time_ms: report.hybrid.hybrid_time_s * 1e3,
            speedup: report.hybrid.app_speedup,
            savings: report.hybrid.energy_savings,
        }
    })
}

/// E4: aggregate decompilation statistics over the suite at `-O1` (plus the
/// targeted -O2/-O3 passes).
#[derive(Debug, Clone, Copy, Default)]
pub struct E4Totals {
    /// Benchmarks recovered / failed.
    pub recovered: usize,
    /// CDFG failures.
    pub failed: usize,
    /// Loops recovered.
    pub loops: usize,
    /// Conditionals recovered.
    pub ifs: usize,
    /// Unstructured regions (should be ~0).
    pub unstructured: usize,
    /// Stack slots promoted (from -O0 binaries).
    pub stack_slots: usize,
    /// Multiplications promoted (from -O2 binaries).
    pub muls_promoted: usize,
    /// Loops rerolled (from -O3 binaries).
    pub rerolled: usize,
    /// Values narrowed below 32 bits.
    pub narrowed: usize,
}

/// Runs E4 (decompile-only — profiles are not needed, but the memoized
/// binaries are reused).
pub fn run_e4() -> E4Totals {
    let per_bench = par_map(&suite(), |b| {
        let mut t = E4Totals::default();
        // structure + widths from the -O1 binary
        match CompiledSuite::decompiled(b, OptLevel::O1, DecompileOptions::default()) {
            Ok(prog) => {
                t.recovered += 1;
                t.loops += prog.stats.structure.loops();
                t.ifs += prog.stats.structure.ifs + prog.stats.structure.if_elses;
                t.unstructured += prog.stats.structure.unstructured;
                t.narrowed += prog.stats.passes.values_narrowed;
            }
            Err(_) => t.failed += 1,
        }
        // stack ops from -O0
        if let Ok(prog) = CompiledSuite::decompiled(b, OptLevel::O0, DecompileOptions::default()) {
            t.stack_slots += prog.stats.passes.stack_slots_promoted;
        }
        // strength promotion from -O2, rerolling from -O3 (with recovery so
        // jump-table benchmarks still decompile)
        let opts = DecompileOptions {
            recover_jump_tables: true,
            ..Default::default()
        };
        if let Ok(prog) = CompiledSuite::decompiled(b, OptLevel::O2, opts) {
            t.muls_promoted += prog.stats.passes.muls_promoted;
        }
        if let Ok(prog) = CompiledSuite::decompiled(b, OptLevel::O3, opts) {
            t.rerolled += prog.stats.passes.loops_rerolled;
        }
        t
    });
    let mut total = E4Totals::default();
    for t in per_bench {
        total.recovered += t.recovered;
        total.failed += t.failed;
        total.loops += t.loops;
        total.ifs += t.ifs;
        total.unstructured += t.unstructured;
        total.stack_slots += t.stack_slots;
        total.muls_promoted += t.muls_promoted;
        total.rerolled += t.rerolled;
        total.narrowed += t.narrowed;
    }
    total
}

/// A1: partitioner-quality comparison on abstract candidates harvested from
/// the real flow.
#[derive(Debug, Clone)]
pub struct A1Result {
    /// (algorithm, total gain, solve time in microseconds).
    pub rows: Vec<(&'static str, u64, u128)>,
}

/// Runs the A1 ablation over the whole suite's kernel candidates.
pub fn run_a1(area_budget: u64) -> A1Result {
    use binpart_partition as bp;
    // Harvest candidates from every recovered benchmark, in parallel.
    let harvested = par_map(&suite(), |b| {
        let mut options = FlowOptions::default();
        options.decompile.recover_jump_tables = true;
        let mut items = Vec::new();
        if let Ok(report) = run_cell(b, OptLevel::O1, options) {
            for k in &report.partition.kernels {
                let hw_cpu_cycles = (k.synth.timing.hw_cycles as f64
                    * (200e6 / (k.synth.timing.clock_mhz * 1e6)))
                    as u64;
                items.push(bp::Item {
                    sw_cycles: k.sw_cycles,
                    hw_cycles: hw_cpu_cycles,
                    area: k.synth.area.gate_equivalents,
                });
            }
        }
        items
    });
    let items: Vec<bp::Item> = harvested.into_iter().flatten().collect();
    let timed = |f: &dyn Fn() -> bp::Selection| {
        let t0 = std::time::Instant::now();
        let sel = f();
        (sel.gain, t0.elapsed().as_micros())
    };
    let g = timed(&|| bp::greedy_90_10(&items, area_budget));
    let k = timed(&|| bp::knapsack_optimal(&items, area_budget, 256));
    let c = timed(&|| bp::gclp(&items, area_budget));
    let s = timed(&|| bp::simulated_annealing(&items, area_budget, 12345, 50_000));
    A1Result {
        rows: vec![
            ("greedy-90-10 (paper)", g.0, g.1),
            ("knapsack optimal", k.0, k.1),
            ("GCLP (Kalavade-Lee)", c.0, c.1),
            ("simulated annealing", s.0, s.1),
        ],
    }
}

/// A2: decompiler-optimization ablation — speedup with passes on vs off.
pub fn run_a2() -> Vec<(String, f64, f64)> {
    let subset: Vec<Benchmark> = suite().into_iter().take(6).collect();
    par_map(&subset, |b| {
        let run = |optimize: bool| -> f64 {
            let options = FlowOptions {
                decompile: DecompileOptions {
                    recover_jump_tables: true,
                    optimize,
                    ..Default::default()
                },
                ..Default::default()
            };
            match run_cell(b, OptLevel::O1, options) {
                Ok(r) => r.hybrid.app_speedup,
                Err(_) => 1.0,
            }
        };
        (b.name.to_string(), run(true), run(false))
    })
}

/// A3: alias-step (block RAM) ablation.
pub fn run_a3() -> Vec<(String, f64, f64)> {
    let subset: Vec<Benchmark> = suite().into_iter().take(6).collect();
    par_map(&subset, |b| {
        let run = |alias: bool| -> f64 {
            let mut options = FlowOptions::default();
            options.decompile.recover_jump_tables = true;
            options.partition.alias_step = alias;
            match run_cell(b, OptLevel::O1, options) {
                Ok(r) => r.hybrid.app_speedup,
                Err(_) => 1.0,
            }
        };
        (b.name.to_string(), run(true), run(false))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiled_suite_builds_each_entry_once() {
        let b = suite().into_iter().find(|b| b.name == "crc").unwrap();
        let first = CompiledSuite::get(&b, OptLevel::O1);
        let again = CompiledSuite::get(&b, OptLevel::O1);
        // Same Arc, not a rebuild.
        assert!(Arc::ptr_eq(&first, &again));
        assert!(first.exit().profile.total_instrs > 0);
    }

    #[test]
    fn memoized_flow_matches_direct_flow() {
        let b = suite().into_iter().find(|b| b.name == "aifirf01").unwrap();
        let direct = {
            let binary = b.compile(OptLevel::O1).unwrap();
            Flow::new(FlowOptions::default()).run(&binary).unwrap()
        };
        let row = run_one(&b, OptLevel::O1, 200e6, false);
        let n = row.result.expect("recovers");
        assert!((n.app_speedup - direct.hybrid.app_speedup).abs() < 1e-12);
        assert_eq!(n.area_gates, direct.hybrid.total_area_gates);
    }

    #[test]
    fn e1_parallel_results_are_deterministic_and_ordered() {
        let rows1 = run_e1(200e6, false);
        let rows2 = run_e1(200e6, false);
        assert_eq!(rows1.len(), 20);
        // Order must match the suite declaration order despite par_map.
        let names: Vec<&str> = rows1.iter().map(|r| r.name.as_str()).collect();
        let expect: Vec<&str> = suite().iter().map(|b| b.name).collect();
        assert_eq!(names, expect);
        for (a, b) in rows1.iter().zip(rows2.iter()) {
            match (&a.result, &b.result) {
                (Some(x), Some(y)) => assert_eq!(x.app_speedup.to_bits(), y.app_speedup.to_bits()),
                (None, None) => {}
                _ => panic!("{}: nondeterministic recovery", a.name),
            }
        }
        // The paper's 2-of-20 jump-table failures.
        assert_eq!(rows1.iter().filter(|r| r.result.is_none()).count(), 2);
    }

    #[test]
    fn snapshot_check_reports_missing_and_null_keys_with_path() {
        let dir = std::env::temp_dir().join("binpart_snapshot_check");
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        let nulled = dir.join("nulled.json");
        std::fs::write(&good, "{\n  \"sim_speedup\": 12.5\n}\n").unwrap();
        std::fs::write(&nulled, "{\n  \"sim_speedup\": null\n}\n").unwrap();
        let good = good.to_str().unwrap();
        let nulled = nulled.to_str().unwrap();

        // Absent everywhere: a skip, not an error.
        let absent = dir.join("absent.json");
        let absent = absent.to_str().unwrap();
        assert!(matches!(check_snapshot_at(&[absent], &["sim_speedup"]), Ok(false)));

        // Present and populated.
        assert!(matches!(check_snapshot_at(&[good], &["sim_speedup"]), Ok(true)));

        // Missing column: error names both the file and the key, and tells
        // the reader how to regenerate.
        let err = check_snapshot_at(&[good], &["cosim_cycles_per_sec"]).unwrap_err();
        assert!(matches!(&err, SnapshotError::MissingKey { key, .. } if key == "cosim_cycles_per_sec"));
        let msg = err.to_string();
        assert!(msg.contains("good.json"), "{msg}");
        assert!(msg.contains("cosim_cycles_per_sec"), "{msg}");
        assert!(msg.contains("tables"), "{msg}");

        // Null column: distinct variant, still actionable.
        let err = check_snapshot_at(&[nulled], &["sim_speedup"]).unwrap_err();
        assert!(matches!(&err, SnapshotError::NullKey { key, .. } if key == "sim_speedup"));
        assert!(err.to_string().contains("null"), "{err}");
    }

    #[test]
    fn snapshot_value_reader_parses_numbers_and_skips_absent() {
        let dir = std::env::temp_dir().join("binpart_snapshot_value");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("snap.json");
        std::fs::write(
            &file,
            "{\n  \"sim_speedup\": 12.5,\n  \"estimate_cache_hit_rate\": 0.9375,\n  \"full_suite_wall_clock_s\": null\n}\n",
        )
        .unwrap();
        let file = file.to_str().unwrap();
        assert_eq!(read_snapshot_value_at(&[file], "sim_speedup"), Some(12.5));
        assert_eq!(
            read_snapshot_value_at(&[file], "estimate_cache_hit_rate"),
            Some(0.9375)
        );
        // Null and missing keys are both "no baseline", not errors.
        assert_eq!(read_snapshot_value_at(&[file], "full_suite_wall_clock_s"), None);
        assert_eq!(read_snapshot_value_at(&[file], "no_such_key"), None);
        let absent = dir.join("absent.json");
        assert_eq!(read_snapshot_value_at(&[absent.to_str().unwrap()], "sim_speedup"), None);
    }

    #[test]
    fn telemetry_pass_exports_loadable_chrome_trace_and_populated_columns() {
        let (rec, cols) = telemetry_pass();
        // The acceptance shape: a full-suite cosim run plus a 100-point
        // sweep on one recorder exports valid Chrome-trace JSON carrying
        // per-stage spans and cache-hit counter tracks.
        let trace = rec.chrome_trace().expect("spans balance");
        binpart_telemetry::validate_json(&trace).expect("trace parses");
        for span in ["cosimulate", "profile", "decompile", "estimate", "evaluate", "sweep"] {
            assert!(trace.contains(&format!("\"name\":\"{span}\"")), "missing span {span}");
        }
        for track in ["estimate_cache_hit", "estimate_cache_miss", "sweep_points_ok"] {
            assert!(trace.contains(&format!("\"name\":\"{track}\"")), "missing track {track}");
        }
        // The derived columns are live: every stage ran, the estimate memo
        // saw real traffic, and the superblock engine retired trace passes.
        for (name, wall) in [
            ("profile", cols.stage_wall_s_profile),
            ("decompile", cols.stage_wall_s_decompile),
            ("estimate", cols.stage_wall_s_estimate),
            ("evaluate", cols.stage_wall_s_evaluate),
            ("cosimulate", cols.stage_wall_s_cosimulate),
        ] {
            assert!(wall > 0.0, "stage {name} recorded no wall clock");
        }
        assert!(
            cols.estimate_cache_hit_rate > 0.0 && cols.estimate_cache_hit_rate <= 1.0,
            "estimate cache rate out of range: {}",
            cols.estimate_cache_hit_rate
        );
        assert!(
            (0.0..=1.0).contains(&cols.trace_side_exit_rate),
            "side-exit rate out of range: {}",
            cols.trace_side_exit_rate
        );
        assert!(rec.counter_total(Counter::TracePasses) > 0, "superblocks never ran");
        assert_eq!(rec.counter_total(Counter::SweepPointsOk), 100);
        // The hardware-attribution columns are live too: the instrumented
        // matrix saw real FSMD profiles, and the ratios are well-formed.
        assert!(
            (0.0..100.0).contains(&cols.hw_bus_stall_pct),
            "bus-stall share out of range: {}",
            cols.hw_bus_stall_pct
        );
        assert!(
            (0.0..100.0).contains(&cols.hw_fill_overhead_pct) && cols.hw_fill_overhead_pct > 0.0,
            "fill-overhead share out of range: {}",
            cols.hw_fill_overhead_pct
        );
        assert!(
            cols.hw_state_coverage > 0.0 && cols.hw_state_coverage <= 1.0,
            "state coverage out of range: {}",
            cols.hw_state_coverage
        );
        assert!(rec.counter_total(Counter::HwInvocations) > 0, "hw counters never fired");
    }

    #[test]
    fn history_append_assigns_monotonic_run_ids_and_trend_parses_them() {
        let dir = std::env::temp_dir().join("binpart_history_log");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hist.jsonl");
        let _ = std::fs::remove_file(&path);
        let path = path.to_str().unwrap();
        let snap1 = "{\n  \"sim_speedup\": 3.25,\n  \"hw_state_coverage\": 0.9871,\n  \"full_suite_wall_clock_s\": null\n}\n";
        let snap2 = "{\n  \"sim_speedup\": 3.50,\n  \"hw_state_coverage\": 1.0000,\n  \"full_suite_wall_clock_s\": 0.100000\n}\n";
        assert_eq!(history_append(path, snap1).unwrap(), 1);
        assert_eq!(history_append(path, snap2).unwrap(), 2);
        // One line per run, each a flat object stamped with its id.
        let text = std::fs::read_to_string(path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"run_id\": 1, "));
        assert!(lines[1].starts_with("{\"run_id\": 2, "));
        assert!(!lines[1].contains('\t'));
        let (prev, cur) = history_last_two(path).expect("two entries");
        assert_eq!(prev[0], ("run_id".to_string(), 1.0));
        assert_eq!(cur[0], ("run_id".to_string(), 2.0));
        assert!(prev.iter().any(|(k, v)| k == "sim_speedup" && *v == 3.25));
        assert!(cur.iter().any(|(k, v)| k == "sim_speedup" && *v == 3.5));
        // `null` values are skipped, not parsed as zero.
        assert!(!prev.iter().any(|(k, _)| k == "full_suite_wall_clock_s"));
        assert!(cur.iter().any(|(k, v)| k == "full_suite_wall_clock_s" && *v == 0.1));
        // A pruned log keeps counting above the ids that remain.
        std::fs::write(path, format!("{}\n", lines[1])).unwrap();
        assert_eq!(history_append(path, snap1).unwrap(), 3);
        // Fewer than two lines: no trend yet.
        std::fs::write(path, "").unwrap();
        assert!(history_last_two(path).is_none());
        assert_eq!(history_append(path, snap1).unwrap(), 1);
        assert!(history_last_two(path).is_none());
    }

    #[cfg(unix)]
    #[test]
    fn snapshot_check_unreadable_is_an_error_not_a_skip() {
        // A directory squatting on the snapshot name: read_to_string fails
        // with something other than NotFound, which must surface as
        // Unreadable rather than fall through to "absent, skipping".
        let dir = std::env::temp_dir().join("binpart_snapshot_dir.json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.to_str().unwrap();
        let err = check_snapshot_at(&[path], &["sim_speedup"]).unwrap_err();
        assert!(matches!(&err, SnapshotError::Unreadable { .. }), "{err}");
        assert!(err.to_string().contains("cannot be read"), "{err}");
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
