//! Dynamic adjacent-pair histogram over the benchmark suite: which
//! instruction pairs dominate execution at each optimization level, i.e.
//! where superinstruction fusion candidates live. This is the measurement
//! behind the `FusionConfig` pattern table in `binpart_mips::sim`.
//!
//! Run with: `cargo run --release --example fusion_histogram [-O0|-O1|-O2|-O3]`

use binpart::minicc::OptLevel;
use binpart::mips::sim::Machine;
use binpart::mips::Instr;
use binpart::workloads::suite;
use std::collections::HashMap;

fn mnemonic(i: Instr) -> &'static str {
    use Instr::*;
    match i {
        Add { .. } | Addu { .. } => "addu",
        Sub { .. } | Subu { .. } => "subu",
        And { .. } => "and",
        Or { .. } => "or",
        Xor { .. } => "xor",
        Nor { .. } => "nor",
        Slt { .. } => "slt",
        Sltu { .. } => "sltu",
        Sll { .. } => "sll",
        Srl { .. } => "srl",
        Sra { .. } => "sra",
        Sllv { .. } => "sllv",
        Srlv { .. } => "srlv",
        Srav { .. } => "srav",
        Mult { .. } => "mult",
        Multu { .. } => "multu",
        Div { .. } => "div",
        Divu { .. } => "divu",
        Mfhi { .. } => "mfhi",
        Mflo { .. } => "mflo",
        Mthi { .. } => "mthi",
        Mtlo { .. } => "mtlo",
        Addi { .. } | Addiu { .. } => "addiu",
        Slti { .. } => "slti",
        Sltiu { .. } => "sltiu",
        Andi { .. } => "andi",
        Ori { .. } => "ori",
        Xori { .. } => "xori",
        Lui { .. } => "lui",
        Lb { .. } => "lb",
        Lbu { .. } => "lbu",
        Lh { .. } => "lh",
        Lhu { .. } => "lhu",
        Lw { .. } => "lw",
        Sb { .. } => "sb",
        Sh { .. } => "sh",
        Sw { .. } => "sw",
        Beq { .. } => "beq",
        Bne { .. } => "bne",
        Blez { .. } => "blez",
        Bgtz { .. } => "bgtz",
        Bltz { .. } => "bltz",
        Bgez { .. } => "bgez",
        J { .. } => "j",
        Jal { .. } => "jal",
        Jr { .. } => "jr",
        Jalr { .. } => "jalr",
        Break { .. } => "break",
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let level = match std::env::args().nth(1).as_deref() {
        Some("-O0") => OptLevel::O0,
        Some("-O2") => OptLevel::O2,
        Some("-O3") => OptLevel::O3,
        _ => OptLevel::O1,
    };
    let mut pairs: HashMap<(&str, &str), u64> = HashMap::new();
    let mut total = 0u64;
    for b in suite() {
        let binary = b.compile(level)?;
        let text = binary.decode_text()?;
        let exit = Machine::new(&binary)?.run()?;
        total += exit.profile.total_instrs;
        for i in 0..text.len().saturating_sub(1) {
            // Weight a static pair by the dynamic count of its first
            // instruction: an upper bound on how often the pair retires
            // back to back.
            let n = exit.profile.counts[i];
            if n > 0 {
                *pairs.entry((mnemonic(text[i]), mnemonic(text[i + 1]))).or_insert(0) += n;
            }
        }
    }
    let mut rows: Vec<_> = pairs.into_iter().collect();
    rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("top adjacent pairs at {} ({} dynamic instrs):", level.flag(), total);
    for ((a, b), n) in rows.into_iter().take(25) {
        println!("{:>6.2}%  {a} ; {b}", 100.0 * n as f64 / total as f64);
    }
    Ok(())
}
