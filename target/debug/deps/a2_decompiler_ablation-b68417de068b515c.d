/root/repo/target/debug/deps/a2_decompiler_ablation-b68417de068b515c.d: crates/bench/benches/a2_decompiler_ablation.rs Cargo.toml

/root/repo/target/debug/deps/liba2_decompiler_ablation-b68417de068b515c.rmeta: crates/bench/benches/a2_decompiler_ablation.rs Cargo.toml

crates/bench/benches/a2_decompiler_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
