//! Differential verification of this PR's staged/optimized paths against
//! their monolithic/reference counterparts:
//!
//! * the staged flow (`binpart::core::stage::StagedFlow`) vs the
//!   monolithic `Flow::run` — identical `HybridReport` and `Partition`
//!   across the benchmark × OptLevel matrix;
//! * the dense (index/bitset-based) SSA construction vs the retained
//!   map-based oracle (`ssa::reference_construct`) — identical functions
//!   (same phi placement, same SSA names), identical live-ins, identical
//!   live-in/live-out sets from the bitset liveness;
//! * the staged sweep engine vs the naive per-point loop on a grid.

use binpart::cdfg::dataflow::Liveness;
use binpart::cdfg::ssa;
use binpart::core::flow::{Flow, FlowOptions};
use binpart::core::lift;
use binpart::core::stage::StagedFlow;
use binpart::core::{DecompileError, DecompileOptions, LiftError, PassStats};
use binpart::minicc::OptLevel;
use binpart::platform::Platform;
use binpart::workloads::suite;

/// Staged evaluation must be bit-identical to the monolithic flow for
/// every (benchmark, OptLevel) cell, including the cells where CDFG
/// recovery fails.
#[test]
fn staged_flow_matches_monolithic_flow_across_matrix() {
    for b in suite() {
        for level in OptLevel::ALL {
            let binary = b.compile(level).unwrap();
            let staged = StagedFlow::new(&binary);
            for clock in [40e6, 200e6, 400e6] {
                for budget in [15_000u64, 250_000] {
                    let mut options = FlowOptions {
                        platform: Platform::mips_virtex2(clock),
                        ..Default::default()
                    };
                    options.decompile.recover_jump_tables = true;
                    options.partition.area_budget_gates = budget;
                    let tag = format!("{} {level} @{clock}Hz/{budget}", b.name);
                    let mono = Flow::new(options.clone()).run(&binary);
                    let st = staged.evaluate(&options);
                    match (mono, st) {
                        (Ok(m), Ok(s)) => {
                            assert_eq!(
                                m.hybrid.app_speedup.to_bits(),
                                s.hybrid.app_speedup.to_bits(),
                                "{tag}: speedup"
                            );
                            assert_eq!(
                                m.hybrid.energy_savings.to_bits(),
                                s.hybrid.energy_savings.to_bits(),
                                "{tag}: energy"
                            );
                            assert_eq!(
                                m.hybrid.hybrid_time_s.to_bits(),
                                s.hybrid.hybrid_time_s.to_bits(),
                                "{tag}: time"
                            );
                            assert_eq!(
                                m.hybrid.total_area_gates, s.hybrid.total_area_gates,
                                "{tag}: area"
                            );
                            assert_eq!(m.sw_cycles, s.sw_cycles, "{tag}: cycles");
                            assert_eq!(m.sw_exit_value, s.sw_exit_value, "{tag}: exit");
                            assert_eq!(m.stats, s.stats, "{tag}: decompile stats");
                            assert_eq!(m.partition.log, s.partition.log, "{tag}: log");
                            assert_eq!(
                                m.partition.total_area_gates, s.partition.total_area_gates,
                                "{tag}: partition area"
                            );
                            assert_eq!(
                                m.partition.kernels.len(),
                                s.partition.kernels.len(),
                                "{tag}: kernel count"
                            );
                            for (km, ks) in m.partition.kernels.iter().zip(&s.partition.kernels)
                            {
                                assert_eq!(km.name, ks.name, "{tag}");
                                assert_eq!(km.step, ks.step, "{tag} {}", km.name);
                                assert_eq!(km.sw_cycles, ks.sw_cycles, "{tag} {}", km.name);
                                assert_eq!(
                                    km.invocations, ks.invocations,
                                    "{tag} {}",
                                    km.name
                                );
                                assert_eq!(
                                    km.mem_in_bram, ks.mem_in_bram,
                                    "{tag} {}",
                                    km.name
                                );
                                assert_eq!(
                                    km.synth.area.gate_equivalents,
                                    ks.synth.area.gate_equivalents,
                                    "{tag} {}",
                                    km.name
                                );
                                assert_eq!(
                                    km.synth.timing.hw_cycles, ks.synth.timing.hw_cycles,
                                    "{tag} {}",
                                    km.name
                                );
                                assert_eq!(km.synth.vhdl, ks.synth.vhdl, "{tag} {}", km.name);
                            }
                        }
                        (Err(m), Err(s)) => {
                            assert_eq!(format!("{m}"), format!("{s}"), "{tag}: errors differ")
                        }
                        (m, s) => panic!(
                            "{tag}: monolithic {:?} vs staged {:?}",
                            m.map(|r| r.hybrid.app_speedup),
                            s.map(|r| r.hybrid.app_speedup)
                        ),
                    }
                }
            }
        }
    }
}

/// The telemetry overhead gate, correctness leg: with a live recorder
/// attached, every observable artifact — the software `Exit` (profile +
/// cycles) and the full evaluation — must be bit-identical to the
/// uninstrumented `NullTelemetry` flow across the whole suite matrix.
/// Telemetry may *observe* the flow; it may never perturb it.
#[test]
fn telemetry_instrumented_flow_is_bit_identical_suite_wide() {
    use binpart::telemetry::{Counter, Recorder};
    let recorder = Recorder::new();
    let mut cells = 0usize;
    for b in suite() {
        for level in OptLevel::ALL {
            let binary = b.compile(level).unwrap();
            let mut options = FlowOptions::default();
            options.decompile.recover_jump_tables = true;
            // Superblocks on: the trace-cache counter harvest is the one
            // telemetry path that touches simulator state accessors.
            options.sim.superblocks = true;
            let plain = StagedFlow::new(&binary);
            let instrumented = StagedFlow::with_telemetry(&binary, &recorder);
            let tag = format!("{} {level}", b.name);

            let exit_plain = plain.profile(options.sim).unwrap();
            let exit_inst = instrumented.profile(options.sim).unwrap();
            assert_eq!(exit_plain.cycles, exit_inst.cycles, "{tag}: cycles");
            assert_eq!(exit_plain.instrs, exit_inst.instrs, "{tag}: instrs");
            assert_eq!(exit_plain.regs, exit_inst.regs, "{tag}: registers");
            assert_eq!(exit_plain.profile, exit_inst.profile, "{tag}: profile");

            match (plain.evaluate(&options), instrumented.evaluate(&options)) {
                (Ok(p), Ok(i)) => {
                    assert_eq!(
                        p.hybrid.app_speedup.to_bits(),
                        i.hybrid.app_speedup.to_bits(),
                        "{tag}: speedup"
                    );
                    assert_eq!(
                        p.hybrid.energy_savings.to_bits(),
                        i.hybrid.energy_savings.to_bits(),
                        "{tag}: energy"
                    );
                    assert_eq!(p.partition.log, i.partition.log, "{tag}: log");
                    assert_eq!(
                        p.partition.total_area_gates, i.partition.total_area_gates,
                        "{tag}: area"
                    );
                }
                (Err(p), Err(i)) => {
                    assert_eq!(format!("{p}"), format!("{i}"), "{tag}: errors differ")
                }
                (p, i) => panic!(
                    "{tag}: plain {:?} vs instrumented {:?}",
                    p.map(|r| r.hybrid.app_speedup),
                    i.map(|r| r.hybrid.app_speedup)
                ),
            }
            cells += 1;
        }
    }
    assert_eq!(cells, 80, "matrix should cover the suite");
    // The recorder actually observed the pass: every cell missed its
    // profile slot exactly once, and the superblock engine reported in.
    assert_eq!(recorder.counter_total(Counter::ProfileStageMiss), 80);
    assert!(recorder.counter_total(Counter::TracePasses) > 0);
}

/// The plain-recovery failure cells (the paper's 2-of-20) must fail
/// identically through both entries.
#[test]
fn staged_flow_reports_same_jump_table_failures() {
    for b in suite() {
        let binary = match b.compile(OptLevel::O1) {
            Ok(bin) => bin,
            Err(e) => panic!("{}: {e}", b.name),
        };
        let options = FlowOptions::default();
        let staged = StagedFlow::new(&binary);
        let mono = Flow::new(options.clone()).run(&binary);
        let st = staged.evaluate(&options);
        match (&mono, &st) {
            (Ok(_), Ok(_)) => {}
            (
                Err(binpart::core::FlowError::Decompile(DecompileError::Lift(
                    LiftError::IndirectJump { pc: a },
                ))),
                Err(binpart::core::FlowError::Decompile(DecompileError::Lift(
                    LiftError::IndirectJump { pc: c },
                ))),
            ) => assert_eq!(a, c, "{}", b.name),
            other => panic!("{}: {other:?}", b.name),
        }
    }
}

/// The dense SSA construction must produce *bit-identical* functions to
/// the retained map-based oracle — same phi placement and argument order,
/// same fresh-name numbering, same recovered live-ins — and the bitset
/// liveness over both must agree, on every function of the suite matrix.
#[test]
fn dense_ssa_matches_reference_oracle_on_suite() {
    let opts = DecompileOptions {
        recover_jump_tables: true,
        ..Default::default()
    };
    let mut functions_checked = 0usize;
    for b in suite() {
        for level in OptLevel::ALL {
            let binary = b.compile(level).unwrap();
            let lifted = match lift::lift_program(&binary, opts) {
                Ok(l) => l,
                Err(e) => panic!("{} {level}: lift failed: {e}", b.name),
            };
            for f in lifted.functions {
                // The pipeline runs stack-op removal pre-SSA; mirror it so
                // the oracle sees the same input shapes.
                let mut pre = f.clone();
                let mut stats = PassStats::default();
                binpart::core::opts::stack_op_removal(&mut pre, &mut stats);
                let mut dense = pre.clone();
                let mut reference = pre;
                let info_dense = ssa::construct(&mut dense);
                let info_ref = ssa::reference_construct(&mut reference);
                let tag = format!("{} {level} fn {}", b.name, dense.name);
                assert_eq!(
                    info_dense.live_ins, info_ref.live_ins,
                    "{tag}: live-ins differ"
                );
                assert_eq!(
                    format!("{dense}"),
                    format!("{reference}"),
                    "{tag}: SSA functions differ"
                );
                ssa::verify(&dense).unwrap_or_else(|e| panic!("{tag}: {e}"));
                // Liveness over both must agree set-for-set.
                let ld = Liveness::compute(&dense);
                let lr = Liveness::compute(&reference);
                for bi in dense.block_ids() {
                    assert_eq!(
                        ld.live_in[bi.index()], lr.live_in[bi.index()],
                        "{tag}: live-in at {bi:?}"
                    );
                    assert_eq!(
                        ld.live_out[bi.index()], lr.live_out[bi.index()],
                        "{tag}: live-out at {bi:?}"
                    );
                }
                functions_checked += 1;
            }
        }
    }
    assert!(
        functions_checked >= 80,
        "matrix should cover the suite ({functions_checked} functions)"
    );
}
