/root/repo/target/release/deps/binpart_workloads-e314496539213b32.d: crates/workloads/src/lib.rs

/root/repo/target/release/deps/binpart_workloads-e314496539213b32: crates/workloads/src/lib.rs

crates/workloads/src/lib.rs:
