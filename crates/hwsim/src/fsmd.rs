//! The FSMD interpreter: executes a scheduled region of a decompiled
//! function, state by control step, with pipelined-loop cycle accounting.

use binpart_cdfg::ir::{
    BinOp, BlockId, Function, MemWidth, Op, Operand, Terminator, UnOp, VReg,
};
use binpart_cdfg::loops::LoopForest;
use binpart_mips::hybrid::HwStore;
use binpart_mips::sim::Memory;
use crate::hwtel::{HwAttr, HwAttribution, HwTelemetry, NullHwTelemetry};
use binpart_synth::schedule::{
    loop_iteration_ops, rec_mii, res_mii, res_mii_nonmem, schedule_ops,
};
use binpart_synth::{ResourceBudget, TechLibrary};
use std::collections::HashMap;
use std::fmt;

/// The hardware's memory port: byte-granular little-endian access. The
/// interpreter checks natural alignment before calling; implementations
/// never fail.
pub trait HwBus {
    /// Reads one byte.
    fn read_u8(&mut self, addr: u32) -> u8;
    /// Writes one byte of a `bytes`-wide store of `value` to `base` (the
    /// store is also reported once, whole, via [`HwBus::on_store`]).
    fn write_u8(&mut self, addr: u32, value: u8);
    /// Reads an aligned little-endian word (defaulted byte-wise;
    /// implementations override with a single-probe fast path).
    fn read_u32(&mut self, addr: u32) -> u32 {
        let mut raw = 0u32;
        for i in 0..4 {
            raw |= u32::from(self.read_u8(addr.wrapping_add(i))) << (8 * i);
        }
        raw
    }
    /// Writes an aligned little-endian word (defaulted byte-wise).
    fn write_u32(&mut self, addr: u32, value: u32) {
        for i in 0..4 {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }
    /// One architectural store completed (for logging).
    fn on_store(&mut self, addr: u32, bytes: u8, value: u32) {
        let _ = (addr, bytes, value);
    }
}

/// Copy-on-write view over the CPU's [`Memory`]: reads fall through to the
/// underlying memory until the hardware overwrites a location; writes stay
/// in the overlay and are logged in store order. Nothing is ever
/// committed — the hybrid machine's software oracle remains authoritative.
///
/// The overlay is **word-granular** (keyed by `addr >> 2`): every
/// naturally aligned access of any width lands inside one aligned word, so
/// a load/store costs one map probe instead of one per byte — the FSMD's
/// memory inner loop dominates co-simulation throughput.
#[derive(Debug)]
pub struct OverlayBus<'m> {
    mem: &'m Memory,
    /// Copy-on-write words, keyed by word number (`addr >> 2`).
    overlay: HashMap<u32, u32>,
    /// Every store performed, in execution order.
    pub stores: Vec<HwStore>,
}

impl<'m> OverlayBus<'m> {
    /// An empty overlay over `mem`.
    pub fn new(mem: &'m Memory) -> OverlayBus<'m> {
        OverlayBus {
            mem,
            overlay: HashMap::new(),
            stores: Vec::new(),
        }
    }

    /// The current word containing `addr` (overlay first, else memory).
    #[inline]
    fn word(&self, addr: u32) -> u32 {
        let wno = addr >> 2;
        match self.overlay.get(&wno) {
            Some(&w) => w,
            None => self.mem.read_u32(wno << 2),
        }
    }
}

impl HwBus for OverlayBus<'_> {
    #[inline]
    fn read_u8(&mut self, addr: u32) -> u8 {
        (self.word(addr) >> (8 * (addr & 3))) as u8
    }
    #[inline]
    fn write_u8(&mut self, addr: u32, value: u8) {
        let shift = 8 * (addr & 3);
        let w = (self.word(addr) & !(0xffu32 << shift)) | (u32::from(value) << shift);
        self.overlay.insert(addr >> 2, w);
    }
    #[inline]
    fn read_u32(&mut self, addr: u32) -> u32 {
        self.word(addr) // aligned: one probe
    }
    #[inline]
    fn write_u32(&mut self, addr: u32, value: u32) {
        self.overlay.insert(addr >> 2, value);
    }
    fn on_store(&mut self, addr: u32, bytes: u8, value: u32) {
        self.stores.push(HwStore { addr, bytes, value });
    }
}

/// Why an FSMD execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmdError {
    /// A load/store address violated natural alignment.
    Unaligned {
        /// Faulting address.
        addr: u32,
    },
    /// The cycle budget ran out (runaway hardware — usually a mis-bound
    /// live-in turning a loop exit condition false forever).
    CycleLimit {
        /// The configured limit.
        limit: u64,
    },
    /// The region contained an op hardware cannot execute (a call), or a
    /// malformed terminator.
    Unexecutable,
    /// A phi had no argument for the executed predecessor.
    PhiWithoutPred,
}

impl fmt::Display for FsmdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmdError::Unaligned { addr } => write!(f, "unaligned hw access to {addr:#010x}"),
            FsmdError::CycleLimit { limit } => write!(f, "hw exceeded {limit} cycles"),
            FsmdError::Unexecutable => write!(f, "region contains unexecutable op"),
            FsmdError::PhiWithoutPred => write!(f, "phi missing executed predecessor"),
        }
    }
}

impl std::error::Error for FsmdError {}

/// One completed FSMD invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmdRun {
    /// Measured hardware cycles (control steps, with pipelined loops at
    /// their II).
    pub cycles: u64,
    /// Header executions of pipelined loops (steady-state iterations).
    pub iterations: u64,
    /// Entries into pipelined loops (each pays the pipeline fill).
    pub entries: u64,
    /// Region blocks executed.
    pub blocks_executed: u64,
    /// The first out-of-region block control transferred to, if the region
    /// was left by an exit edge ([`None`] when it returned).
    pub exit_block: Option<BlockId>,
    /// The value returned, when the region ended in a `Return`.
    pub return_value: Option<u32>,
}

/// One block compiled for execution: its leading phis, its non-phi ops in
/// (control step, original index) order, and its schedule depth.
#[derive(Debug, Clone)]
struct ExecBlock {
    /// Indices of `Op::Phi` ops (evaluated in parallel at block entry).
    phis: Vec<u32>,
    /// Non-phi op indices sorted by (scheduled step, index) — the state
    /// sequence of the block's FSM. Dependence-safe: an op's producers
    /// never sit in a later step, and within a step chained producers
    /// precede consumers in original order.
    order: Vec<u32>,
    /// Control steps the block occupies (1 for control-only blocks).
    depth: u32,
}

/// One pipelined innermost loop.
#[derive(Debug, Clone, Copy)]
struct PipeLoop {
    header: BlockId,
    ii: u32,
    /// Pipeline fill cost paid once per entry: `depth - II`.
    fill: u32,
    /// The share of the II forced by memory-port contention:
    /// `II - max(RecMII, ResMII-without-mem)` — attributed to
    /// [`HwAttr::BusStall`] per iteration.
    stall: u32,
    /// The loop's static trip count, when known (analytic attribution).
    trip_count: Option<u64>,
}

/// A compiled, executable FSMD for one region of a decompiled function —
/// the same schedules and initiation intervals
/// [`binpart_synth::synthesize`] estimates from, in executable form.
#[derive(Debug)]
pub struct Fsmd<'f> {
    f: &'f Function,
    entry: BlockId,
    in_region: Vec<bool>,
    blocks: Vec<Option<ExecBlock>>,
    loops: Vec<PipeLoop>,
    /// Innermost pipelined loop covering each block, if any.
    loop_of: Vec<Option<usize>>,
}

impl<'f> Fsmd<'f> {
    /// Compiles the scheduled FSMD for `region` of `f`, entered at `entry`.
    ///
    /// Scheduling inputs (budget, library, block-RAM placement) must match
    /// the synthesis call whose estimate the execution is compared against.
    ///
    /// # Errors
    ///
    /// [`FsmdError::Unexecutable`] if the region contains calls.
    pub fn compile(
        f: &'f Function,
        region: &[BlockId],
        entry: BlockId,
        budget: &ResourceBudget,
        library: &TechLibrary,
        mem_in_bram: bool,
    ) -> Result<Fsmd<'f>, FsmdError> {
        let nblocks = f.blocks.len();
        let mut in_region = vec![false; nblocks];
        for &b in region {
            in_region[b.index()] = true;
        }
        if !in_region.get(entry.index()).copied().unwrap_or(false) {
            return Err(FsmdError::Unexecutable);
        }
        // Pipelined innermost loops fully inside the region — the same set
        // `estimate_kernel_cycles` software-pipelines.
        let forest = LoopForest::compute(f);
        let mut loops = Vec::new();
        let mut loop_of: Vec<Option<usize>> = vec![None; nblocks];
        for (li, l) in forest.loops().iter().enumerate() {
            let is_innermost = !forest.loops().iter().any(|o| o.parent == Some(li));
            if !is_innermost || !l.blocks.iter().all(|b| in_region[b.index()]) {
                continue;
            }
            let ops = loop_iteration_ops(f, &l.blocks);
            let sched = schedule_ops(f, &ops, library, budget, mem_in_bram);
            let rmii = rec_mii(f, &l.blocks, l.header, library, budget, mem_in_bram);
            let smii = res_mii(&ops, budget, library, mem_in_bram);
            let ii = rmii.max(smii);
            // What the II would be with infinite memory ports; the gap is
            // the bus-contention share of every steady-state iteration.
            let nonmem = rmii.max(res_mii_nonmem(&ops, budget, library, mem_in_bram));
            let pid = loops.len();
            loops.push(PipeLoop {
                header: l.header,
                ii,
                fill: sched.depth.saturating_sub(ii),
                stall: ii.saturating_sub(nonmem),
                trip_count: l.trip_count,
            });
            for &b in &l.blocks {
                loop_of[b.index()] = Some(pid);
            }
        }
        // Per-block state sequences.
        let mut blocks: Vec<Option<ExecBlock>> = vec![None; nblocks];
        for &b in region {
            let block = f.block(b);
            for inst in &block.ops {
                if matches!(inst.op, Op::Call { .. }) {
                    return Err(FsmdError::Unexecutable);
                }
            }
            let ops: Vec<&Op> = block.ops.iter().map(|i| &i.op).collect();
            let (order, depth) = if ops.is_empty() {
                (Vec::new(), 1)
            } else {
                let sched = schedule_ops(f, &ops, library, budget, mem_in_bram);
                let mut order: Vec<u32> = (0..ops.len() as u32)
                    .filter(|&k| !matches!(ops[k as usize], Op::Phi { .. }))
                    .collect();
                order.sort_by_key(|&k| (sched.steps[k as usize], k));
                (order, sched.depth)
            };
            let phis: Vec<u32> = (0..block.ops.len() as u32)
                .filter(|&k| matches!(block.ops[k as usize].op, Op::Phi { .. }))
                .collect();
            blocks[b.index()] = Some(ExecBlock { phis, order, depth });
        }
        Ok(Fsmd {
            f,
            entry,
            in_region,
            blocks,
            loops,
            loop_of,
        })
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// SSA registers read by the region but defined outside it — the values
    /// [`Fsmd::execute`] needs bound. Deterministic order (block × op ×
    /// operand).
    pub fn live_ins(&self) -> Vec<VReg> {
        let mut defined = vec![false; self.f.vreg_count() as usize];
        for (bi, eb) in self.blocks.iter().enumerate() {
            if eb.is_none() {
                continue;
            }
            for inst in &self.f.block(BlockId(bi as u32)).ops {
                if let Some(d) = inst.op.dst() {
                    defined[d.index()] = true;
                }
            }
        }
        let mut seen = vec![false; self.f.vreg_count() as usize];
        let mut live = Vec::new();
        let mut note = |o: &Operand| {
            if let Operand::Reg(r) = o {
                if !defined[r.index()] && !seen[r.index()] {
                    seen[r.index()] = true;
                    live.push(*r);
                }
            }
        };
        for (bi, eb) in self.blocks.iter().enumerate() {
            if eb.is_none() {
                continue;
            }
            let block = self.f.block(BlockId(bi as u32));
            for inst in &block.ops {
                inst.op.for_each_use(&mut note);
            }
            block.term.for_each_use(&mut note);
        }
        live
    }

    /// Blocks in the function (sizing for telemetry recorders).
    pub fn block_count(&self) -> usize {
        self.f.blocks.len()
    }

    /// FSM states in the kernel: region blocks the FSMD compiled.
    pub fn region_states(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// The analytic per-category cycle attribution: the exact split
    /// [`binpart_synth::schedule::estimate_kernel_cycles`] predicts from
    /// the compiled schedule tables and the static profile counts. The
    /// categories sum to the analytic `hw_cycles` estimate (up to its
    /// `max(1)` floor); differencing against a measured
    /// [`HwAttribution`] decomposes the estimate error by feature.
    pub fn analytic_attribution(&self) -> HwAttribution {
        let mut a = HwAttribution::default();
        for pl in &self.loops {
            let hb = self.f.block(pl.header);
            let iters = hb.profile_count * u64::from(hb.reroll_factor);
            let entries = match pl.trip_count {
                Some(t) if t > 0 => iters.div_ceil(t),
                _ => 1,
            };
            a.steady_ii += iters * u64::from(pl.ii - pl.stall);
            a.bus_stall += iters * u64::from(pl.stall);
            a.fill_drain += entries * u64::from(pl.fill);
        }
        for (bi, eb) in self.blocks.iter().enumerate() {
            let Some(eb) = eb else { continue };
            if self.loop_of[bi].is_some() {
                continue;
            }
            let b = self.f.block(BlockId(bi as u32));
            let count = b.profile_count * u64::from(b.reroll_factor);
            a.block_seq += count * u64::from(eb.depth);
        }
        a
    }

    /// Executes one invocation: live-ins pre-bound in `vals` (indexed by
    /// [`VReg::index`], sized to the function's register count), memory
    /// through `bus`. Runs until the region is left or `cycle_limit` is
    /// exceeded.
    ///
    /// # Errors
    ///
    /// Any [`FsmdError`]; the bus may have absorbed a partial store log.
    pub fn execute(
        &self,
        vals: &mut [u32],
        bus: &mut impl HwBus,
        cycle_limit: u64,
    ) -> Result<FsmdRun, FsmdError> {
        self.execute_tel(vals, bus, cycle_limit, &NullHwTelemetry)
    }

    /// [`Fsmd::execute`] with a live [`HwTelemetry`] sink. Monomorphized:
    /// with [`NullHwTelemetry`] every probe compiles away and this *is*
    /// `execute`. Every `cycles +=` below has exactly one matching
    /// [`HwTelemetry::charge`], so a recording sink's per-state and
    /// per-category totals both sum to [`FsmdRun::cycles`] exactly.
    ///
    /// # Errors
    ///
    /// Any [`FsmdError`]; the bus may have absorbed a partial store log.
    pub fn execute_tel<H: HwTelemetry>(
        &self,
        vals: &mut [u32],
        bus: &mut impl HwBus,
        cycle_limit: u64,
        tel: &H,
    ) -> Result<FsmdRun, FsmdError> {
        let f = self.f;
        let mut run = FsmdRun {
            cycles: 0,
            iterations: 0,
            entries: 0,
            blocks_executed: 0,
            exit_block: None,
            return_value: None,
        };
        let mut cur = self.entry;
        let mut prev: Option<BlockId> = None;
        let mut cur_loop: Option<usize> = None;
        let mut phi_new: Vec<(VReg, u32)> = Vec::new();
        loop {
            let eb = self.blocks[cur.index()]
                .as_ref()
                .ok_or(FsmdError::Unexecutable)?;
            run.blocks_executed += 1;
            if H::ENABLED {
                tel.state_enter(run.cycles, cur.0);
            }
            // ---- timing: pipelined loops at II, other blocks at depth ----
            match self.loop_of[cur.index()] {
                Some(li) => {
                    let pl = self.loops[li];
                    if cur_loop != Some(li) {
                        // entering the loop: pay the pipeline fill once
                        run.cycles += u64::from(pl.fill);
                        run.entries += 1;
                        cur_loop = Some(li);
                        if H::ENABLED {
                            tel.charge(cur.0, HwAttr::FillDrain, u64::from(pl.fill));
                        }
                    }
                    if cur == pl.header {
                        run.cycles += u64::from(pl.ii);
                        run.iterations += 1;
                        if H::ENABLED {
                            tel.charge(cur.0, HwAttr::SteadyII, u64::from(pl.ii - pl.stall));
                            tel.charge(cur.0, HwAttr::BusStall, u64::from(pl.stall));
                        }
                    }
                }
                None => {
                    cur_loop = None;
                    run.cycles += u64::from(eb.depth);
                    if H::ENABLED {
                        tel.charge(cur.0, HwAttr::BlockSeq, u64::from(eb.depth));
                    }
                }
            }
            if run.cycles > cycle_limit {
                return Err(FsmdError::CycleLimit { limit: cycle_limit });
            }
            let block = f.block(cur);
            // ---- phis: parallel assignment from the executed predecessor ----
            if !eb.phis.is_empty() {
                phi_new.clear();
                for &k in &eb.phis {
                    // The phi index table is built at compile time; a stale
                    // entry means the FSMD is malformed, not a panic.
                    let Some(Op::Phi { dst, args }) =
                        block.ops.get(k as usize).map(|i| &i.op)
                    else {
                        return Err(FsmdError::Unexecutable);
                    };
                    let arg = match prev {
                        Some(p) => args.iter().find(|(b, _)| *b == p).map(|(_, a)| *a),
                        // Region entry: the unique outside-predecessor arg.
                        None => args
                            .iter()
                            .find(|(b, _)| !self.in_region[b.index()])
                            .map(|(_, a)| *a),
                    };
                    let arg = arg.ok_or(FsmdError::PhiWithoutPred)?;
                    phi_new.push((*dst, eval(vals, arg)));
                }
                for &(d, v) in &phi_new {
                    vals[d.index()] = v;
                    if H::ENABLED {
                        tel.reg_write(run.cycles, d.index() as u32, v);
                    }
                }
            }
            // ---- datapath: the block's states in scheduled order ----
            for &k in &eb.order {
                exec_op(f, vals, bus, &block.ops[k as usize].op, tel, run.cycles)?;
            }
            // ---- terminator ----
            let next = match &block.term {
                Terminator::Jump(t) => *t,
                Terminator::Branch { cond, t, f: fe } => {
                    if eval(vals, *cond) != 0 {
                        *t
                    } else {
                        *fe
                    }
                }
                Terminator::Switch {
                    index,
                    targets,
                    default,
                } => {
                    let i = eval(vals, *index) as usize;
                    targets.get(i).copied().unwrap_or(*default)
                }
                Terminator::Return { value } => {
                    run.return_value = value.map(|v| eval(vals, v));
                    return Ok(run);
                }
                Terminator::None => return Err(FsmdError::Unexecutable),
            };
            if !self.in_region[next.index()] {
                run.exit_block = Some(next);
                return Ok(run);
            }
            prev = Some(cur);
            cur = next;
        }
    }
}

#[inline]
fn eval(vals: &[u32], o: Operand) -> u32 {
    match o {
        Operand::Reg(r) => vals[r.index()],
        Operand::Const(c) => c as u32,
    }
}

#[inline]
fn exec_op<H: HwTelemetry>(
    f: &Function,
    vals: &mut [u32],
    bus: &mut impl HwBus,
    op: &Op,
    tel: &H,
    cycle: u64,
) -> Result<(), FsmdError> {
    let _ = f;
    match op {
        Op::Const { dst, value } => {
            vals[dst.index()] = *value as u32;
            if H::ENABLED {
                tel.reg_write(cycle, dst.index() as u32, vals[dst.index()]);
            }
        }
        Op::Copy { dst, src } => {
            vals[dst.index()] = eval(vals, *src);
            if H::ENABLED {
                tel.reg_write(cycle, dst.index() as u32, vals[dst.index()]);
            }
        }
        Op::Un { op, dst, src } => {
            let v = eval(vals, *src);
            vals[dst.index()] = UnOp::fold(*op, v as i64) as u32;
            if H::ENABLED {
                tel.reg_write(cycle, dst.index() as u32, vals[dst.index()]);
            }
        }
        Op::Bin { op, dst, lhs, rhs } => {
            let a = eval(vals, *lhs);
            let b = eval(vals, *rhs);
            vals[dst.index()] = BinOp::fold(*op, a as i64, b as i64) as u32;
            if H::ENABLED {
                tel.reg_write(cycle, dst.index() as u32, vals[dst.index()]);
            }
        }
        Op::Load {
            dst,
            addr,
            width,
            signed,
        } => {
            let a = eval(vals, *addr);
            check_aligned(a, *width)?;
            let raw = match width {
                MemWidth::W => bus.read_u32(a),
                _ => {
                    let n = width.bytes();
                    let mut raw: u32 = 0;
                    for i in 0..n {
                        raw |= u32::from(bus.read_u8(a.wrapping_add(i))) << (8 * i);
                    }
                    raw
                }
            };
            vals[dst.index()] = match (width, signed) {
                (MemWidth::B, true) => raw as u8 as i8 as i32 as u32,
                (MemWidth::H, true) => raw as u16 as i16 as i32 as u32,
                _ => raw,
            };
            if H::ENABLED {
                tel.bus_read(cycle, a, width.bytes() as u8, raw);
                tel.reg_write(cycle, dst.index() as u32, vals[dst.index()]);
            }
        }
        Op::Store { src, addr, width } => {
            let a = eval(vals, *addr);
            check_aligned(a, *width)?;
            let v = eval(vals, *src);
            match width {
                MemWidth::W => bus.write_u32(a, v),
                _ => {
                    for i in 0..width.bytes() {
                        bus.write_u8(a.wrapping_add(i), (v >> (8 * i)) as u8);
                    }
                }
            }
            bus.on_store(a, width.bytes() as u8, v);
            if H::ENABLED {
                tel.bus_write(cycle, a, width.bytes() as u8, v);
            }
        }
        Op::Phi { .. } => {} // handled at block entry
        Op::Call { .. } => return Err(FsmdError::Unexecutable),
    }
    Ok(())
}

#[inline]
fn check_aligned(addr: u32, width: MemWidth) -> Result<(), FsmdError> {
    let mask = width.bytes() - 1;
    if addr & mask != 0 {
        return Err(FsmdError::Unaligned { addr });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use binpart_cdfg::ssa;
    use binpart_synth::{synthesize, SynthesisInput};

    /// The canonical sum kernel: `for (i = 0; i < n; i++) acc += a[i<<2]`.
    fn sum_kernel(iters: u64) -> (Function, Vec<BlockId>, BlockId) {
        let mut f = Function::new("sum");
        let header = f.add_block();
        let body = f.add_block();
        let exit = f.add_block();
        let i = f.new_vreg();
        let acc = f.new_vreg();
        let c = f.new_vreg();
        let addr = f.new_vreg();
        let x = f.new_vreg();
        f.block_mut(f.entry).push(Op::Const { dst: i, value: 0 });
        f.block_mut(f.entry).push(Op::Const { dst: acc, value: 0 });
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).push(Op::Bin {
            op: BinOp::LtS,
            dst: c,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(iters as i64),
        });
        f.block_mut(header).term = Terminator::Branch {
            cond: Operand::Reg(c),
            t: body,
            f: exit,
        };
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Shl,
            dst: addr,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(2),
        });
        f.block_mut(body).push(Op::Load {
            dst: x,
            addr: Operand::Reg(addr),
            width: MemWidth::W,
            signed: false,
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: acc,
            lhs: Operand::Reg(acc),
            rhs: Operand::Reg(x),
        });
        f.block_mut(body).push(Op::Bin {
            op: BinOp::Add,
            dst: i,
            lhs: Operand::Reg(i),
            rhs: Operand::Const(1),
        });
        f.block_mut(body).term = Terminator::Jump(header);
        f.block_mut(exit).term = Terminator::Return {
            value: Some(Operand::Reg(acc)),
        };
        ssa::construct(&mut f);
        for b in f.block_ids().collect::<Vec<_>>() {
            f.block_mut(b).profile_count = 1;
        }
        let header = f
            .block_ids()
            .find(|&b| matches!(f.block(b).term, Terminator::Branch { .. }))
            .unwrap();
        f.block_mut(header).profile_count = iters + 1;
        if let Terminator::Branch { t, .. } = f.block(header).term {
            f.block_mut(t).profile_count = iters;
        }
        // The hardware region is the loop itself (header + body); the
        // entry block (the preheader) stays in software.
        let body = match f.block(header).term {
            Terminator::Branch { t, .. } => t,
            _ => unreachable!(),
        };
        (f, vec![header, body], header)
    }

    fn library() -> TechLibrary {
        TechLibrary::virtex2()
    }

    /// Binds every live-in whose function-level def is a `Const`.
    fn bind_const_live_ins(f: &Function, fsmd: &Fsmd<'_>, vals: &mut [u32]) {
        for v in fsmd.live_ins() {
            for b in f.block_ids() {
                for inst in &f.block(b).ops {
                    if let Op::Const { dst, value } = inst.op {
                        if dst == v {
                            vals[v.index()] = value as u32;
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fsmd_computes_the_architectural_sum() {
        let n = 100u64;
        let (f, region, header) = sum_kernel(n);
        let fsmd = Fsmd::compile(
            &f,
            &region,
            header,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        // Seed memory: a[i] = i at word addresses.
        let mut mem = Memory::new();
        for i in 0..n {
            mem.write_u32((i * 4) as u32, i as u32);
        }
        let mut bus = OverlayBus::new(&mem);
        // Live-ins: the loop phis' init values, defined by the preheader's
        // `Const` ops — bind them from their defs.
        let mut vals = vec![0u32; f.vreg_count() as usize];
        bind_const_live_ins(&f, &fsmd, &mut vals);
        let run = fsmd.execute(&mut vals, &mut bus, 1 << 24).unwrap();
        let expected: u32 = (0..n as u32).sum();
        // The region exits through the loop's exit block; the sum sits in
        // the accumulator phi value — visible through the exit block's
        // return in full-function execution. Here we check iterations and
        // that no stores happened.
        assert_eq!(run.iterations, n + 1, "header executes n+1 times");
        assert_eq!(run.entries, 1);
        assert!(run.exit_block.is_some());
        assert!(bus.stores.is_empty());
        // The accumulator's final value must be somewhere in vals: find it.
        assert!(vals.contains(&expected), "sum {expected} not computed");
    }

    #[test]
    fn measured_cycles_match_analytic_estimate_when_counts_are_exact() {
        let n = 1000u64;
        let (f, region, header) = sum_kernel(n);
        let budget = ResourceBudget::default();
        let fsmd = Fsmd::compile(&f, &region, header, &budget, &library(), true).unwrap();
        let mem = Memory::new();
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        bind_const_live_ins(&f, &fsmd, &mut vals);
        let run = fsmd.execute(&mut vals, &mut bus, 1 << 28).unwrap();
        let mut input = SynthesisInput::new(&f, region);
        input.budget = budget;
        let est = synthesize(&input).unwrap();
        // The profile counts are exact for this kernel, so measured and
        // analytic agree to within the entries-estimation slack.
        let measured = run.cycles as f64;
        let analytic = est.timing.hw_cycles as f64;
        let err = (measured - analytic).abs() / analytic;
        assert!(
            err < 0.05,
            "measured {measured} vs analytic {analytic} ({:.1}% off)",
            err * 100.0
        );
    }

    #[test]
    fn recorded_attribution_conserves_measured_cycles_exactly() {
        let n = 137u64;
        let (f, region, header) = sum_kernel(n);
        let budget = ResourceBudget::default();
        let fsmd = Fsmd::compile(&f, &region, header, &budget, &library(), true).unwrap();
        let mem = Memory::new();
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        bind_const_live_ins(&f, &fsmd, &mut vals);
        let rec = crate::hwtel::HwRecorder::new(fsmd.block_count());
        rec.invocation_begin();
        let run = fsmd.execute_tel(&mut vals, &mut bus, 1 << 28, &rec).unwrap();
        rec.invocation_commit();
        let profile = rec.profile(&fsmd);
        // Conservation by construction: per-category and per-state sums
        // both equal the measured cycle count, exactly.
        assert_eq!(profile.attributed.total(), run.cycles);
        assert_eq!(profile.measured_cycles, run.cycles);
        assert_eq!(
            profile.state_cycles.iter().map(|&(_, c)| c).sum::<u64>(),
            run.cycles
        );
        // The analytic split sums to the synthesizer's estimate.
        let mut input = SynthesisInput::new(&f, region);
        input.budget = budget;
        let est = synthesize(&input).unwrap();
        assert_eq!(profile.analytic.total().max(1), est.timing.hw_cycles);
        // Every region state ran, and the bus saw one load per iteration.
        assert_eq!(profile.states_executed, profile.states_total);
        assert_eq!(profile.bus_reads, n);
        assert_eq!(profile.bus_writes, 0);
        assert!(!profile.last_bus.is_empty());
        assert!(profile.vcd.is_some(), "first invocation captures a wave");
    }

    #[test]
    fn identical_run_with_and_without_recorder_is_bit_identical() {
        let (f, region, header) = sum_kernel(64);
        let fsmd = Fsmd::compile(
            &f,
            &region,
            header,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        let mut mem = Memory::new();
        for i in 0..64u32 {
            mem.write_u32(i * 4, i * 3);
        }
        let run2 = || {
            let mut bus = OverlayBus::new(&mem);
            let mut vals = vec![0u32; f.vreg_count() as usize];
            bind_const_live_ins(&f, &fsmd, &mut vals);
            (fsmd.execute(&mut vals, &mut bus, 1 << 24).unwrap(), vals)
        };
        let (plain, plain_vals) = run2();
        let rec = crate::hwtel::HwRecorder::new(fsmd.block_count());
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        bind_const_live_ins(&f, &fsmd, &mut vals);
        rec.invocation_begin();
        let instrumented = fsmd.execute_tel(&mut vals, &mut bus, 1 << 24, &rec).unwrap();
        rec.invocation_commit();
        assert_eq!(plain, instrumented);
        assert_eq!(plain_vals, vals);
    }

    #[test]
    fn golden_vcd_for_the_sum_kernel() {
        let (f, region, header) = sum_kernel(4);
        let fsmd = Fsmd::compile(
            &f,
            &region,
            header,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        let mut mem = Memory::new();
        for i in 0..4u32 {
            mem.write_u32(i * 4, 10 + i);
        }
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        bind_const_live_ins(&f, &fsmd, &mut vals);
        let rec = crate::hwtel::HwRecorder::new(fsmd.block_count());
        rec.invocation_begin();
        fsmd.execute_tel(&mut vals, &mut bus, 1 << 20, &rec).unwrap();
        rec.invocation_commit();
        let vcd = rec.profile(&fsmd).vcd.expect("wave captured");
        if std::env::var_os("BINPART_PIN_GOLDEN").is_some() {
            std::fs::write(
                concat!(env!("CARGO_MANIFEST_DIR"), "/src/golden_sum_kernel.vcd"),
                &vcd,
            )
            .unwrap();
        }
        let golden = include_str!("golden_sum_kernel.vcd");
        assert_eq!(
            vcd, golden,
            "VCD output drifted from the pinned golden; if the change is \
             intended, regenerate with BINPART_PIN_GOLDEN=1 cargo test -p \
             binpart-hwsim golden_vcd"
        );
    }

    #[test]
    fn stores_are_logged_in_order_and_stay_in_the_overlay() {
        // store a[0]=7; a[1]=9 in one block.
        let mut f = Function::new("st");
        let e = f.entry;
        f.block_mut(e).push(Op::Store {
            src: Operand::Const(7),
            addr: Operand::Const(0x100),
            width: MemWidth::W,
        });
        f.block_mut(e).push(Op::Store {
            src: Operand::Const(9),
            addr: Operand::Const(0x104),
            width: MemWidth::W,
        });
        f.block_mut(e).term = Terminator::Return { value: None };
        ssa::construct(&mut f);
        let region: Vec<BlockId> = f.block_ids().collect();
        let fsmd = Fsmd::compile(
            &f,
            &region,
            f.entry,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        let mem = Memory::new();
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        let run = fsmd.execute(&mut vals, &mut bus, 1024).unwrap();
        assert_eq!(run.return_value, None);
        assert_eq!(
            bus.stores,
            vec![
                HwStore { addr: 0x100, bytes: 4, value: 7 },
                HwStore { addr: 0x104, bytes: 4, value: 9 },
            ]
        );
        assert_eq!(mem.read_u32(0x100), 0, "overlay never commits");
        let mut bus2 = OverlayBus::new(&mem);
        assert_eq!(bus2.read_u8(0x100), 0);
    }

    #[test]
    fn cycle_limit_catches_runaway_hardware() {
        // while (1) {} — branch always back to header.
        let mut f = Function::new("spin");
        let header = f.add_block();
        f.block_mut(f.entry).term = Terminator::Jump(header);
        f.block_mut(header).term = Terminator::Jump(header);
        ssa::construct(&mut f);
        let region = vec![header];
        let fsmd = Fsmd::compile(
            &f,
            &region,
            header,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        let mem = Memory::new();
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        let err = fsmd.execute(&mut vals, &mut bus, 1000).unwrap_err();
        assert!(matches!(err, FsmdError::CycleLimit { .. }));
    }

    #[test]
    fn unaligned_hw_access_faults() {
        let mut f = Function::new("ua");
        let d = f.new_vreg();
        f.block_mut(f.entry).push(Op::Load {
            dst: d,
            addr: Operand::Const(0x101),
            width: MemWidth::W,
            signed: false,
        });
        f.block_mut(f.entry).term = Terminator::Return { value: None };
        ssa::construct(&mut f);
        let region: Vec<BlockId> = f.block_ids().collect();
        let fsmd = Fsmd::compile(
            &f,
            &region,
            f.entry,
            &ResourceBudget::default(),
            &library(),
            true,
        )
        .unwrap();
        let mem = Memory::new();
        let mut bus = OverlayBus::new(&mem);
        let mut vals = vec![0u32; f.vreg_count() as usize];
        assert_eq!(
            fsmd.execute(&mut vals, &mut bus, 64).unwrap_err(),
            FsmdError::Unaligned { addr: 0x101 }
        );
    }
}
