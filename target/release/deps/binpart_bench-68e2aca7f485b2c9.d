/root/repo/target/release/deps/binpart_bench-68e2aca7f485b2c9.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbinpart_bench-68e2aca7f485b2c9.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbinpart_bench-68e2aca7f485b2c9.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
