/root/repo/target/debug/deps/binpart_bench-5a75877148ea3c49.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbinpart_bench-5a75877148ea3c49.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbinpart_bench-5a75877148ea3c49.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
