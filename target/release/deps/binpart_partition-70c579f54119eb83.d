/root/repo/target/release/deps/binpart_partition-70c579f54119eb83.d: crates/partition/src/lib.rs

/root/repo/target/release/deps/libbinpart_partition-70c579f54119eb83.rlib: crates/partition/src/lib.rs

/root/repo/target/release/deps/libbinpart_partition-70c579f54119eb83.rmeta: crates/partition/src/lib.rs

crates/partition/src/lib.rs:
