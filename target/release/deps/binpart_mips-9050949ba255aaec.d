/root/repo/target/release/deps/binpart_mips-9050949ba255aaec.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

/root/repo/target/release/deps/binpart_mips-9050949ba255aaec: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/binary.rs:
crates/mips/src/cycles.rs:
crates/mips/src/encode.rs:
crates/mips/src/instr.rs:
crates/mips/src/reference.rs:
crates/mips/src/reg.rs:
crates/mips/src/sim.rs:
