/root/repo/target/release/deps/binpart_minicc-bf9df0fcda4c10b9.d: crates/minicc/src/lib.rs crates/minicc/src/ast.rs crates/minicc/src/ast_opt.rs crates/minicc/src/codegen.rs crates/minicc/src/lexer.rs crates/minicc/src/lower.rs crates/minicc/src/opt.rs crates/minicc/src/parser.rs crates/minicc/src/tir.rs

/root/repo/target/release/deps/libbinpart_minicc-bf9df0fcda4c10b9.rlib: crates/minicc/src/lib.rs crates/minicc/src/ast.rs crates/minicc/src/ast_opt.rs crates/minicc/src/codegen.rs crates/minicc/src/lexer.rs crates/minicc/src/lower.rs crates/minicc/src/opt.rs crates/minicc/src/parser.rs crates/minicc/src/tir.rs

/root/repo/target/release/deps/libbinpart_minicc-bf9df0fcda4c10b9.rmeta: crates/minicc/src/lib.rs crates/minicc/src/ast.rs crates/minicc/src/ast_opt.rs crates/minicc/src/codegen.rs crates/minicc/src/lexer.rs crates/minicc/src/lower.rs crates/minicc/src/opt.rs crates/minicc/src/parser.rs crates/minicc/src/tir.rs

crates/minicc/src/lib.rs:
crates/minicc/src/ast.rs:
crates/minicc/src/ast_opt.rs:
crates/minicc/src/codegen.rs:
crates/minicc/src/lexer.rs:
crates/minicc/src/lower.rs:
crates/minicc/src/opt.rs:
crates/minicc/src/parser.rs:
crates/minicc/src/tir.rs:
