/root/repo/target/release/examples/explore_platform-19596e69c312b850.d: examples/explore_platform.rs

/root/repo/target/release/examples/explore_platform-19596e69c312b850: examples/explore_platform.rs

examples/explore_platform.rs:
