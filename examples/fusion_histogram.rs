//! Dynamic adjacent-pair histogram over the benchmark suite: which
//! instruction pairs dominate execution at each optimization level, i.e.
//! where superinstruction fusion candidates live. This is the measurement
//! behind the `FusionConfig` pattern table in `binpart_mips::sim`.
//!
//! Run with: `cargo run --release --example fusion_histogram [-O0|-O1|-O2|-O3]
//! [--superblocks] [--trace-out FILE]`
//!
//! `--superblocks` switches to the trace-cache view: every benchmark runs
//! under the superblock engine and the hottest recorded traces are
//! printed — entry pc, shape (segments / text slots / dense dispatches
//! per pass), pass and side-exit counts, and the empirical hold rate (the
//! branch bias the trace was recorded on). This is the measurement behind
//! the superblock engine's heat threshold and segment caps.
//!
//! `--trace-out FILE` writes the run's telemetry as Chrome-trace JSON:
//! one span per benchmark, plus (in `--superblocks` mode) the trace-cache
//! counter tracks. Load it in `chrome://tracing` or Perfetto.

use binpart::minicc::OptLevel;
use binpart::mips::sim::{FusionConfig, Machine, SimConfig};
use binpart::mips::Instr;
use binpart::telemetry::{Counter, Recorder, SpanGuard, Telemetry};
use binpart::workloads::suite;
use std::collections::HashMap;

fn mnemonic(i: Instr) -> &'static str {
    use Instr::*;
    match i {
        Add { .. } | Addu { .. } => "addu",
        Sub { .. } | Subu { .. } => "subu",
        And { .. } => "and",
        Or { .. } => "or",
        Xor { .. } => "xor",
        Nor { .. } => "nor",
        Slt { .. } => "slt",
        Sltu { .. } => "sltu",
        Sll { .. } => "sll",
        Srl { .. } => "srl",
        Sra { .. } => "sra",
        Sllv { .. } => "sllv",
        Srlv { .. } => "srlv",
        Srav { .. } => "srav",
        Mult { .. } => "mult",
        Multu { .. } => "multu",
        Div { .. } => "div",
        Divu { .. } => "divu",
        Mfhi { .. } => "mfhi",
        Mflo { .. } => "mflo",
        Mthi { .. } => "mthi",
        Mtlo { .. } => "mtlo",
        Addi { .. } | Addiu { .. } => "addiu",
        Slti { .. } => "slti",
        Sltiu { .. } => "sltiu",
        Andi { .. } => "andi",
        Ori { .. } => "ori",
        Xori { .. } => "xori",
        Lui { .. } => "lui",
        Lb { .. } => "lb",
        Lbu { .. } => "lbu",
        Lh { .. } => "lh",
        Lhu { .. } => "lhu",
        Lw { .. } => "lw",
        Sb { .. } => "sb",
        Sh { .. } => "sh",
        Sw { .. } => "sw",
        Beq { .. } => "beq",
        Bne { .. } => "bne",
        Blez { .. } => "blez",
        Bgtz { .. } => "bgtz",
        Bltz { .. } => "bltz",
        Bgez { .. } => "bgez",
        J { .. } => "j",
        Jal { .. } => "jal",
        Jr { .. } => "jr",
        Jalr { .. } => "jalr",
        Break { .. } => "break",
    }
}

/// `--superblocks` mode: run the suite under the trace-cache engine and
/// print the hottest recorded traces per benchmark.
fn superblock_report(level: OptLevel, rec: &Recorder) -> Result<(), Box<dyn std::error::Error>> {
    println!("recorded superblocks at {} (hottest traces per benchmark):", level.flag());
    for b in suite() {
        let _span = SpanGuard::enter(rec, "benchmark", || b.name.to_string());
        let binary = b.compile(level)?;
        let mut m = Machine::with_config(
            &binary,
            SimConfig {
                fusion: FusionConfig::Aggressive,
                superblocks: true,
                ..SimConfig::default()
            },
        )?;
        let exit = m.run_unprofiled()?;
        let stats = m.trace_cache_stats();
        rec.counter_add(Counter::TraceHeatPromotions, stats.heat_promotions);
        rec.counter_add(Counter::TraceInstalls, stats.installs);
        rec.counter_add(Counter::TracePasses, stats.passes);
        rec.counter_add(Counter::TraceSideExits, stats.side_exits);
        rec.counter_add(Counter::TraceChainTransfers, stats.chain_transfers);
        rec.counter_add(Counter::TraceInvalidations, stats.invalidations);
        let mut traces = m.trace_summaries();
        traces.sort_by_key(|t| std::cmp::Reverse(t.passes));
        println!(
            "{:<12} {} traces, {}/{} instrs in superblocks ({:.1}%)",
            b.name,
            stats.traces,
            stats.superblock_instrs,
            exit.instrs,
            100.0 * stats.superblock_instrs as f64 / exit.instrs.max(1) as f64,
        );
        for t in traces.iter().take(4) {
            let side_exits: u64 = t.segs.iter().map(|s| s.side_exits).sum();
            let dense: u32 = t.segs.iter().map(|s| s.dense).sum();
            println!(
                "  {:#010x} {} {:>2} segs / {:>3} slots / {:>3} dense  \
                 {:>10} passes  {:>7} side exits  hold {:>5.1}%",
                t.entry_pc,
                if t.looped { "loop" } else { "line" },
                t.segs.len(),
                t.slots(),
                dense,
                t.passes,
                side_exits,
                100.0 * t.hold_rate(),
            );
        }
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let level = match args.iter().find(|a| a.starts_with("-O")).map(String::as_str) {
        Some("-O0") => OptLevel::O0,
        Some("-O2") => OptLevel::O2,
        Some("-O3") => OptLevel::O3,
        _ => OptLevel::O1,
    };
    let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("fusion_histogram: --trace-out needs a file path");
            std::process::exit(2);
        })
    });
    let rec = Recorder::new();
    if args.iter().any(|a| a == "--superblocks") {
        superblock_report(level, &rec)?;
    } else {
        let mut pairs: HashMap<(&str, &str), u64> = HashMap::new();
        let mut total = 0u64;
        for b in suite() {
            let _span = SpanGuard::enter(&rec, "benchmark", || b.name.to_string());
            let binary = b.compile(level)?;
            let text = binary.decode_text()?;
            let exit = Machine::new(&binary)?.run()?;
            total += exit.profile.total_instrs;
            for i in 0..text.len().saturating_sub(1) {
                // Weight a static pair by the dynamic count of its first
                // instruction: an upper bound on how often the pair retires
                // back to back.
                let n = exit.profile.counts[i];
                if n > 0 {
                    *pairs.entry((mnemonic(text[i]), mnemonic(text[i + 1]))).or_insert(0) += n;
                }
            }
        }
        let mut rows: Vec<_> = pairs.into_iter().collect();
        rows.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        println!("top adjacent pairs at {} ({} dynamic instrs):", level.flag(), total);
        for ((a, b), n) in rows.into_iter().take(25) {
            println!("{:>6.2}%  {a} ; {b}", 100.0 * n as f64 / total as f64);
        }
    }
    if let Some(path) = trace_out {
        let trace = rec.chrome_trace()?;
        std::fs::write(&path, &trace)?;
        println!(
            "wrote Chrome trace to {path} ({} bytes) — load in chrome://tracing or Perfetto",
            trace.len()
        );
    }
    Ok(())
}
