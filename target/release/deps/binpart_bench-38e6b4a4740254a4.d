/root/repo/target/release/deps/binpart_bench-38e6b4a4740254a4.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbinpart_bench-38e6b4a4740254a4.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbinpart_bench-38e6b4a4740254a4.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
