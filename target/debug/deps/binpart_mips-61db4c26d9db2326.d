/root/repo/target/debug/deps/binpart_mips-61db4c26d9db2326.d: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libbinpart_mips-61db4c26d9db2326.rmeta: crates/mips/src/lib.rs crates/mips/src/asm.rs crates/mips/src/binary.rs crates/mips/src/cycles.rs crates/mips/src/encode.rs crates/mips/src/instr.rs crates/mips/src/reference.rs crates/mips/src/reg.rs crates/mips/src/sim.rs Cargo.toml

crates/mips/src/lib.rs:
crates/mips/src/asm.rs:
crates/mips/src/binary.rs:
crates/mips/src/cycles.rs:
crates/mips/src/encode.rs:
crates/mips/src/instr.rs:
crates/mips/src/reference.rs:
crates/mips/src/reg.rs:
crates/mips/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
