//! End-to-end hybrid co-simulation of one benchmark: partition it, then
//! *execute* the partitioned system — software on the fast MIPS simulator,
//! each selected kernel on the cycle-accurate FSMD interpreter — and print
//! measured vs analytically estimated numbers side by side.
//!
//! ```text
//! cargo run --release --example hybrid_run [benchmark] [O0|O1|O2|O3] [--trace-out FILE]
//! ```
//!
//! `--trace-out FILE` writes the run's telemetry as Chrome-trace JSON
//! (per-stage spans + counter tracks); load it in `chrome://tracing` or
//! Perfetto.

use binpart::core::flow::FlowOptions;
use binpart::core::stage::StagedFlow;
use binpart::minicc::OptLevel;
use binpart::telemetry::Recorder;

fn main() {
    let mut trace_out: Option<String> = None;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace-out" {
            trace_out = Some(args.next().unwrap_or_else(|| {
                eprintln!("hybrid_run: --trace-out needs a file path");
                std::process::exit(2);
            }));
        } else {
            positional.push(a);
        }
    }
    let name = positional
        .first()
        .cloned()
        .unwrap_or_else(|| "autcor00".into());
    let level = match positional.get(1).map(String::as_str) {
        Some("O0") => OptLevel::O0,
        Some("O2") => OptLevel::O2,
        Some("O3") => OptLevel::O3,
        _ => OptLevel::O1,
    };
    let bench = binpart::workloads::suite()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let binary = bench.compile(level).expect("suite compiles");

    let mut options = FlowOptions::default();
    options.decompile.recover_jump_tables = true;

    let recorder = Recorder::new();
    let staged = StagedFlow::with_telemetry(&binary, &recorder);
    let report = staged.cosimulate(&options).expect("co-simulation runs");

    println!("== {} at -{:?}: hybrid co-simulation ==", bench.name, level);
    println!(
        "software reference: {} cycles | hybrid exit bit-identical: {}",
        report.sw_cycles, report.exit_bit_identical
    );
    println!();
    println!(
        "{:<28} {:>6} {:>6} {:>12} {:>12} {:>8} {:>6}",
        "kernel", "inv", "hw-inv", "hw-cyc meas", "hw-cyc est", "err%", "mism"
    );
    for k in &report.kernels {
        println!(
            "{:<28} {:>6} {:>6} {:>12} {:>12} {:>8} {:>6}",
            k.name,
            k.invocations,
            k.hw_invocations,
            k.hw_cycles_measured,
            k.hw_cycles_estimated,
            k.error_pct
                .map(|e| format!("{e:+.1}"))
                .unwrap_or_else(|| "-".into()),
            k.store_mismatches,
        );
    }
    println!();
    println!(
        "estimated (analytic): speedup {:.2}x, energy savings {:.0}%",
        report.estimated.app_speedup,
        report.estimated.energy_savings * 100.0
    );
    println!(
        "measured  (executed): speedup {:.2}x, energy savings {:.0}%",
        report.measured.app_speedup,
        report.measured.energy_savings * 100.0
    );
    if let Some(mean) = report.mean_abs_error_pct() {
        println!(
            "hardware-cycle estimate error: mean |{mean:.1}|%, max |{:.1}|%",
            report.max_abs_error_pct().unwrap_or(0.0)
        );
    }
    if report.unmapped_kernels > 0 {
        println!(
            "({} kernel(s) had no recoverable live-in binding and stayed in software)",
            report.unmapped_kernels
        );
    }
    if let Some(path) = trace_out {
        let trace = recorder.chrome_trace().expect("span stream balances");
        std::fs::write(&path, &trace).expect("trace file writes");
        println!(
            "wrote Chrome trace to {path} ({} bytes) — load in chrome://tracing or Perfetto",
            trace.len()
        );
    }
}
