//! Runs the full 20-benchmark suite through the flow (the paper's Table 1)
//! and prints a per-benchmark summary, including the two CDFG-recovery
//! failures on jump-table benchmarks.
//!
//! Uses the memoized, parallel experiment harness from `binpart-bench`, so
//! repeated runs in one process compile and profile each benchmark once.
//!
//! Run with: `cargo run --release --example full_suite`

use binpart_bench::run_e1;

fn main() {
    let t0 = std::time::Instant::now();
    let rows = run_e1(200e6, false);
    let elapsed = t0.elapsed();
    println!(
        "{:<12} {:<11} {:>9} {:>9} {:>8}",
        "benchmark", "suite", "speedup", "energy%", "area"
    );
    let mut failures = 0;
    for r in &rows {
        match &r.result {
            Some(n) => println!(
                "{:<12} {:<11} {:>8.2}x {:>8.0}% {:>8}",
                r.name,
                r.suite,
                n.app_speedup,
                n.energy_savings * 100.0,
                n.area_gates
            ),
            None => {
                failures += 1;
                println!(
                    "{:<12} {:<11} CDFG recovery failed: indirect jump",
                    r.name, r.suite
                );
            }
        }
    }
    println!("\n{failures} of 20 failed CDFG recovery (paper: 2 of 20)");
    println!("suite flow time: {elapsed:.2?}");
}
