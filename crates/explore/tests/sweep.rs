//! Sweep-engine correctness: grid shape, staged-vs-naive bit identity,
//! Pareto frontier invariants, custom axes.

use binpart_explore::{Sweep, SweepResult};
use binpart_minicc::OptLevel;
use binpart_mips::sim::FusionConfig;

fn bench_compile(name: &str) -> impl FnMut(OptLevel) -> Result<binpart_mips::Binary, String> {
    let b = binpart_workloads::suite()
        .into_iter()
        .find(|b| b.name == name)
        .expect("benchmark exists");
    move |level| b.compile(level).map_err(|e| e.to_string())
}

fn base_with_recovery() -> binpart_core::flow::FlowOptions {
    let mut base = binpart_core::flow::FlowOptions::default();
    base.decompile.recover_jump_tables = true;
    base
}

fn assert_identical(staged: &SweepResult, naive: &SweepResult) {
    assert_eq!(staged.points.len(), naive.points.len());
    for (s, n) in staged.points.iter().zip(&naive.points) {
        assert_eq!(s.config, n.config);
        match (&s.outcome, &n.outcome) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "at {:?}", s.config);
                assert_eq!(
                    a.energy_savings.to_bits(),
                    b.energy_savings.to_bits(),
                    "at {:?}",
                    s.config
                );
                assert_eq!(a.area_gates, b.area_gates, "at {:?}", s.config);
                assert_eq!(a.kernels, b.kernels, "at {:?}", s.config);
                assert_eq!(a.sw_cycles, b.sw_cycles, "at {:?}", s.config);
                assert_eq!(a.sw_exit_value, b.sw_exit_value, "at {:?}", s.config);
                assert_eq!(a.coverage.to_bits(), b.coverage.to_bits(), "at {:?}", s.config);
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "at {:?}", s.config),
            (a, b) => panic!("outcome mismatch at {:?}: {a:?} vs {b:?}", s.config),
        }
    }
}

#[test]
fn grid_is_the_full_cross_product_in_order() {
    let sweep = Sweep::new()
        .clocks([40e6, 200e6])
        .area_budgets([1_000, 2_000, 3_000])
        .opt_levels([OptLevel::O0, OptLevel::O1]);
    let configs = sweep.configs();
    assert_eq!(configs.len(), 12);
    assert_eq!(sweep.len(), 12);
    // level is the slowest axis, budget the fastest of the three.
    assert_eq!(configs[0].level, OptLevel::O0);
    assert_eq!(configs[0].clock_hz, 40e6);
    assert_eq!(configs[0].area_budget_gates, 1_000);
    assert_eq!(configs[1].area_budget_gates, 2_000);
    assert_eq!(configs[3].clock_hz, 200e6);
    assert_eq!(configs[6].level, OptLevel::O1);
}

#[test]
fn staged_sweep_is_bit_identical_to_naive_loop() {
    let sweep = Sweep::with_base(base_with_recovery())
        .clocks([40e6, 200e6, 400e6])
        .area_budgets([15_000, 100_000, 250_000])
        .opt_levels(OptLevel::ALL);
    let staged = sweep.run(bench_compile("autcor00"));
    let naive = sweep.run_naive(bench_compile("autcor00"));
    assert_eq!(staged.points.len(), 36);
    assert_identical(&staged, &naive);
    assert!(staged.ok_points().count() == 36);
}

#[test]
fn fusion_axis_never_changes_results() {
    let sweep = Sweep::with_base(base_with_recovery())
        .clocks([200e6])
        .fusions([FusionConfig::Off, FusionConfig::Default, FusionConfig::Aggressive]);
    let result = sweep.run(bench_compile("crc"));
    assert_eq!(result.points.len(), 3);
    let first = result.points[0].outcome.as_ref().unwrap();
    for p in &result.points[1..] {
        let r = p.outcome.as_ref().unwrap();
        assert_eq!(r.speedup.to_bits(), first.speedup.to_bits());
        assert_eq!(r.sw_cycles, first.sw_cycles);
        assert_eq!(r.sw_exit_value, first.sw_exit_value);
    }
}

#[test]
fn jump_table_benchmark_fails_points_without_recovery() {
    // tblook01 compiles to a jump table: plain CDFG recovery fails, so
    // every point reports the decompilation error instead of panicking.
    let sweep = Sweep::new().clocks([40e6, 200e6]);
    let result = sweep.run(bench_compile("tblook01"));
    assert_eq!(result.points.len(), 2);
    for p in &result.points {
        let err = p.outcome.as_ref().unwrap_err();
        assert!(err.contains("decompilation failed"), "{err}");
    }
    assert!(result.pareto().is_empty());
    assert!(result.best_speedup().is_none());
}

#[test]
fn pareto_frontier_is_nondominated_and_covers_best_points() {
    let sweep = Sweep::with_base(base_with_recovery())
        .clocks([40e6, 100e6, 200e6, 400e6])
        .area_budgets([5_000, 40_000, 250_000]);
    let result = sweep.run(bench_compile("aifirf01"));
    let frontier = result.pareto();
    assert!(!frontier.is_empty());
    // No successful point strictly dominates a frontier point.
    for fp in &frontier {
        let f = fp.outcome.as_ref().unwrap();
        for (_, r) in result.ok_points() {
            let dominates = r.speedup >= f.speedup
                && r.energy_savings >= f.energy_savings
                && r.area_gates <= f.area_gates
                && (r.speedup > f.speedup
                    || r.energy_savings > f.energy_savings
                    || r.area_gates < f.area_gates);
            assert!(!dominates, "frontier point dominated");
        }
    }
    // The global best-speedup point is always on the frontier.
    let best = result.best_speedup().unwrap();
    assert!(frontier
        .iter()
        .any(|p| std::ptr::eq(*p, best)));
}

#[test]
fn custom_axis_applies_to_flow_options() {
    let sweep = Sweep::with_base(base_with_recovery())
        .clocks([200e6])
        .axis("max_kernels", [1.0, 8.0], |options, v| {
            options.partition.max_kernels = v as usize;
        });
    let result = sweep.run(bench_compile("jpegdct"));
    assert_eq!(result.points.len(), 2);
    let one = result.points[0].outcome.as_ref().unwrap();
    let eight = result.points[1].outcome.as_ref().unwrap();
    assert_eq!(result.points[0].config.axis_values, vec![1.0]);
    assert!(one.kernels <= 1);
    assert!(eight.kernels >= one.kernels);
}
